// Offline analyzer for JSONL overlay traces (common/trace.h schema).
//
// Reads a trace produced by Testbed::attach_trace() (or any Tracer sink)
// and reconstructs the paper's observables from events alone:
//   - join latency (node.start -> node.routable) as a CDF, the Fig. 4
//     "time to become fully routable" experiment,
//   - CTM request->reply round-trip latency,
//   - delivered-packet overlay hop counts,
//   - drop causes, overlay- and network-level.
//
// With --path=<pkt id> it prints every record touching one packet, i.e.
// the hop-by-hop forwarding path plus the drop that ended it (if any).
//
// With --faults it aligns fault.begin/end records with the overlay's
// repair activity: the fault timeline, fault -> detection (conn.lost)
// latency, and detection -> relink (conn.added) latency distributions.
//
// With --health it summarizes the adaptive-maintenance machinery: the
// per-peer SRTT each node's estimator converged to (conn.rtt), the
// quarantine episodes flapping peers earned (quarantine.begin), and the
// relay lifecycle — tunnels established, relay -> direct upgrade
// latency (relay.upgraded), probe failures, and bootstrap re-probes.
//
// Usage: trace_report <trace.jsonl> [flags]; see --help.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "jsonl_reader.h"
#include "tool_flags.h"

namespace {

using wow::tools::num_value;
using wow::tools::raw_value;
using wow::tools::u64_value;

void print_distribution(const char* title, std::vector<double> values,
                        double lo, double hi, std::size_t bins,
                        const char* unit) {
  std::printf("\n== %s (%zu samples) ==\n", title, values.size());
  if (values.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  wow::RunningStats stats;
  for (double v : values) stats.add(v);
  std::printf("  min %.3f  p50 %.3f  p90 %.3f  p99 %.3f  max %.3f  (%s)\n",
              stats.min(), wow::percentile(values, 50),
              wow::percentile(values, 90), wow::percentile(values, 99),
              stats.max(), unit);
  wow::Histogram hist(lo, hi, bins);
  for (double v : values) hist.add(v);
  std::printf("%s", hist.render().c_str());
  // Cumulative fraction per bin upper edge: the CDF the paper plots.
  std::printf("  CDF:");
  std::size_t cum = 0;
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    cum += hist.count(b);
    if (hist.count(b) == 0) continue;
    std::printf(" %.0f%s:%.2f", hist.bin_hi(b), unit,
                static_cast<double>(cum) / static_cast<double>(hist.total()));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::uint64_t> follow_pkt;
  bool faults_view = false;
  bool health_view = false;
  std::size_t cdf_bins = 20;

  wow::tools::FlagSet flags("trace_report", "<trace.jsonl>");
  flags.on_value("path", "<pkt>",
                 "print every record touching packet id <pkt>",
                 [&](std::string_view v) {
                   follow_pkt =
                       std::strtoull(std::string(v).c_str(), nullptr, 10);
                   return true;
                 });
  flags.on_flag("faults",
                "fault timeline + detection/relink latency view",
                [&] { faults_view = true; });
  flags.on_flag("health",
                "adaptive-maintenance view (SRTT, quarantine, relays)",
                [&] { health_view = true; });
  flags.on_value("cdf-bins", "N", "histogram bins (default 20)",
                 [&](std::string_view v) {
                   cdf_bins = std::strtoul(std::string(v).c_str(), nullptr, 10);
                   return cdf_bins > 0;
                 });
  std::vector<std::string> positional;
  if (!flags.parse(argc, argv, positional)) {
    return flags.help_shown() ? 0 : 2;
  }
  if (positional.size() != 1) {
    flags.print_usage(stderr);
    return 2;
  }
  const char* path = positional[0].c_str();
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path);
    return 1;
  }

  // Per node: time of the most recent start, to pair with the next
  // routable event (restarts produce several pairs per node).
  std::map<std::string, double> start_at;
  std::vector<double> join_latency;
  std::vector<double> ctm_rtt_ms;
  std::vector<double> hops;
  std::vector<double> link_latency;
  std::map<std::string, std::uint64_t> overlay_drops;
  std::map<std::string, std::uint64_t> net_drops;
  std::uint64_t lines = 0;
  std::uint64_t followed = 0;

  // --faults state: the fault timeline, plus repair spans.  A conn.lost
  // within the attribution horizon of the latest fault.begin is a
  // detection; the owner's next conn.added of the same connection type
  // closes the repair.
  struct FaultWindow {
    double begin = 0.0;
    double end = -1.0;  // -1 while open
    std::string kind;
    std::string spec;
  };
  constexpr double kAttributionHorizon = 300.0;  // seconds past begin
  std::vector<FaultWindow> fault_windows;
  std::vector<double> detect_latency;
  std::vector<double> relink_latency;
  std::map<std::string, double> pending_relink;  // node|ctype -> t lost

  // --health state, keyed "node->peer".
  struct PeerRtt {
    std::uint64_t samples = 0;
    double last_srtt_ms = 0.0;
    double max_srtt_ms = 0.0;
  };
  struct QuarantineEpisode {
    double at = 0.0;
    std::string edge;
    double level = 0.0;
    double duration_s = 0.0;
  };
  std::map<std::string, PeerRtt> peer_rtt;
  std::vector<QuarantineEpisode> quarantine_episodes;
  std::vector<double> relay_setup_latency;    // relay.established elapsed_s
  std::vector<double> relay_upgrade_latency;  // relay.upgraded lifetime_s
  std::uint64_t relay_probe_failures = 0;
  std::uint64_t relay_exhausted = 0;
  std::uint64_t bootstrap_reprobes = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    auto ev = raw_value(line, "ev");
    if (!ev) continue;

    if (follow_pkt) {
      if (auto pkt = u64_value(line, "pkt"); pkt && *pkt == *follow_pkt) {
        std::printf("%s\n", line.c_str());
        ++followed;
      }
    }

    auto t = num_value(line, "t");
    auto node = raw_value(line, "node");
    if (*ev == "node.start") {
      if (t && node) start_at[std::string(*node)] = *t;
    } else if (*ev == "node.routable") {
      if (t && node) {
        auto it = start_at.find(std::string(*node));
        if (it != start_at.end()) {
          join_latency.push_back(*t - it->second);
          start_at.erase(it);  // next routable needs a fresh start
        }
      }
    } else if (*ev == "ctm.reply") {
      if (auto rtt = num_value(line, "rtt_s")) {
        ctm_rtt_ms.push_back(*rtt * 1e3);
      }
    } else if (*ev == "packet.deliver") {
      if (auto h = num_value(line, "hops")) hops.push_back(*h);
    } else if (*ev == "link.established") {
      if (auto e = num_value(line, "elapsed_s")) link_latency.push_back(*e);
    } else if (*ev == "packet.drop") {
      if (auto reason = raw_value(line, "reason")) {
        ++overlay_drops[std::string(*reason)];
      }
    } else if (*ev == "net.drop") {
      if (auto reason = raw_value(line, "reason")) {
        ++net_drops[std::string(*reason)];
      }
    }

    if (health_view && t && node) {
      std::string edge = std::string(*node);
      if (auto peer = raw_value(line, "peer")) {
        edge += "->";
        edge += *peer;
      }
      if (*ev == "conn.rtt") {
        PeerRtt& r = peer_rtt[edge];
        ++r.samples;
        if (auto srtt = num_value(line, "srtt_ms")) {
          r.last_srtt_ms = *srtt;
          r.max_srtt_ms = std::max(r.max_srtt_ms, *srtt);
        }
      } else if (*ev == "quarantine.begin") {
        QuarantineEpisode q;
        q.at = *t;
        q.edge = edge;
        if (auto level = num_value(line, "level")) q.level = *level;
        if (auto dur = num_value(line, "duration_s")) q.duration_s = *dur;
        quarantine_episodes.push_back(std::move(q));
      } else if (*ev == "relay.established") {
        if (auto e = num_value(line, "elapsed_s")) {
          relay_setup_latency.push_back(*e);
        }
      } else if (*ev == "relay.upgraded") {
        if (auto life = num_value(line, "relay_lifetime_s")) {
          relay_upgrade_latency.push_back(*life);
        }
      } else if (*ev == "relay.probe_failed") {
        ++relay_probe_failures;
      } else if (*ev == "relay.exhausted") {
        ++relay_exhausted;
      } else if (*ev == "bootstrap.reprobe") {
        ++bootstrap_reprobes;
      }
    }

    if (!faults_view || !t) continue;
    if (*ev == "fault.begin") {
      FaultWindow w;
      w.begin = *t;
      if (auto kind = raw_value(line, "kind")) w.kind = *kind;
      if (auto spec = raw_value(line, "spec")) w.spec = *spec;
      fault_windows.push_back(std::move(w));
    } else if (*ev == "fault.end") {
      auto spec = raw_value(line, "spec");
      for (auto it = fault_windows.rbegin(); it != fault_windows.rend();
           ++it) {
        if (it->end < 0.0 && (!spec || it->spec == *spec)) {
          it->end = *t;
          break;
        }
      }
    } else if (*ev == "conn.lost") {
      double latest_begin = -1.0;
      for (const FaultWindow& w : fault_windows) {
        if (w.begin <= *t && *t - w.begin <= kAttributionHorizon) {
          latest_begin = std::max(latest_begin, w.begin);
        }
      }
      if (latest_begin >= 0.0 && node) {
        detect_latency.push_back(*t - latest_begin);
        std::string key = std::string(*node);
        if (auto ctype = raw_value(line, "ctype")) {
          key += '|';
          key += *ctype;
        }
        pending_relink.emplace(std::move(key), *t);  // keep the earliest
      }
    } else if (*ev == "conn.added") {
      if (node) {
        std::string key = std::string(*node);
        if (auto ctype = raw_value(line, "ctype")) {
          key += '|';
          key += *ctype;
        }
        if (auto it = pending_relink.find(key); it != pending_relink.end()) {
          relink_latency.push_back(*t - it->second);
          pending_relink.erase(it);
        }
      }
    }
  }

  std::printf("trace: %s (%" PRIu64 " records)\n", path, lines);
  if (follow_pkt) {
    std::printf("packet %" PRIu64 ": %" PRIu64 " records shown above\n",
                *follow_pkt, followed);
  }

  double join_hi = 1.0;
  for (double v : join_latency) join_hi = std::max(join_hi, v);
  print_distribution("join latency: node.start -> node.routable",
                     join_latency, 0.0, join_hi, cdf_bins, "s");

  double ctm_hi = 1.0;
  for (double v : ctm_rtt_ms) ctm_hi = std::max(ctm_hi, v);
  print_distribution("CTM request->reply latency", ctm_rtt_ms, 0.0, ctm_hi,
                     cdf_bins, "ms");

  print_distribution("delivered-packet overlay hops", hops, 0.0, 16.0, 16,
                     "hops");

  double link_hi = 1.0;
  for (double v : link_latency) link_hi = std::max(link_hi, v);
  print_distribution("link handshake latency", link_latency, 0.0, link_hi,
                     cdf_bins, "s");

  std::printf("\n== drops ==\n");
  if (overlay_drops.empty() && net_drops.empty()) {
    std::printf("  (none)\n");
  }
  for (const auto& [reason, count] : overlay_drops) {
    std::printf("  overlay/%-16s %" PRIu64 "\n", reason.c_str(), count);
  }
  for (const auto& [reason, count] : net_drops) {
    std::printf("  net/%-20s %" PRIu64 "\n", reason.c_str(), count);
  }

  if (faults_view) {
    std::printf("\n== fault timeline (%zu windows) ==\n",
                fault_windows.size());
    for (const FaultWindow& w : fault_windows) {
      if (w.end >= 0.0) {
        std::printf("  %9.3fs +%6.1fs  %-9s %s\n", w.begin, w.end - w.begin,
                    w.kind.c_str(), w.spec.c_str());
      } else {
        std::printf("  %9.3fs  (open)   %-9s %s\n", w.begin, w.kind.c_str(),
                    w.spec.c_str());
      }
    }
    double detect_hi = 1.0;
    for (double v : detect_latency) detect_hi = std::max(detect_hi, v);
    print_distribution("fault -> detection (conn.lost) latency",
                       detect_latency, 0.0, detect_hi, cdf_bins, "s");
    double relink_hi = 1.0;
    for (double v : relink_latency) relink_hi = std::max(relink_hi, v);
    print_distribution("detection -> relink (conn.added) latency",
                       relink_latency, 0.0, relink_hi, cdf_bins, "s");
    if (!pending_relink.empty()) {
      std::printf("  (%zu lost connections never relinked)\n",
                  pending_relink.size());
    }
  }

  if (health_view) {
    std::printf("\n== per-peer RTT estimators (%zu edges) ==\n",
                peer_rtt.size());
    if (peer_rtt.empty()) std::printf("  (no conn.rtt samples)\n");
    for (const auto& [edge, r] : peer_rtt) {
      std::printf("  %-24s srtt %8.2fms  (max %8.2fms, %" PRIu64
                  " samples)\n",
                  edge.c_str(), r.last_srtt_ms, r.max_srtt_ms, r.samples);
    }
    std::vector<double> srtts;
    for (const auto& [edge, r] : peer_rtt) srtts.push_back(r.last_srtt_ms);
    double srtt_hi = 1.0;
    for (double v : srtts) srtt_hi = std::max(srtt_hi, v);
    print_distribution("final per-peer SRTT", std::move(srtts), 0.0, srtt_hi,
                       cdf_bins, "ms");

    std::printf("\n== quarantine episodes (%zu) ==\n",
                quarantine_episodes.size());
    for (const auto& q : quarantine_episodes) {
      std::printf("  %9.3fs  %-24s level %.0f  for %6.1fs\n", q.at,
                  q.edge.c_str(), q.level, q.duration_s);
    }

    std::printf("\n== relay lifecycle ==\n");
    std::printf("  tunnels established   %zu\n", relay_setup_latency.size());
    std::printf("  upgraded to direct    %zu\n",
                relay_upgrade_latency.size());
    std::printf("  probe failures        %" PRIu64 "\n",
                relay_probe_failures);
    std::printf("  attempts exhausted    %" PRIu64 "\n", relay_exhausted);
    std::printf("  bootstrap re-probes   %" PRIu64 "\n", bootstrap_reprobes);
    double setup_hi = 1.0;
    for (double v : relay_setup_latency) setup_hi = std::max(setup_hi, v);
    print_distribution("relay tunnel setup latency", relay_setup_latency,
                       0.0, setup_hi, cdf_bins, "s");
    double up_hi = 1.0;
    for (double v : relay_upgrade_latency) up_hi = std::max(up_hi, v);
    print_distribution("relay -> direct upgrade latency (tunnel lifetime)",
                       relay_upgrade_latency, 0.0, up_hi, cdf_bins, "s");
  }
  return 0;
}
