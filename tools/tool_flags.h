#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wow::tools {

/// Declarative command-line parser shared by the tools.
///
/// Register every flag up front with its help line, then parse() once:
/// unknown or malformed flags print the usage and fail instead of being
/// silently ignored, and --help/-h comes for free.  Flags are --name
/// (boolean) or --name=value; anything else is a positional argument.
class FlagSet {
 public:
  FlagSet(std::string tool, std::string positional_usage)
      : tool_(std::move(tool)), positional_(std::move(positional_usage)) {}

  /// A boolean switch: `fn` runs when --name is present.
  void on_flag(std::string name, std::string help, std::function<void()> fn) {
    flags_.push_back(Flag{std::move(name), "", std::move(help),
                          std::move(fn), nullptr});
  }

  /// A valued flag --name=<value_name>; `fn` returns false to reject
  /// the value (parse() then fails with the usage).
  void on_value(std::string name, std::string value_name, std::string help,
                std::function<bool(std::string_view)> fn) {
    flags_.push_back(Flag{std::move(name), std::move(value_name),
                          std::move(help), nullptr, std::move(fn)});
  }

  /// Parse argv; positional arguments are appended to `positional`.
  /// Returns false after printing usage on --help (see help_shown())
  /// or on any unknown flag / rejected value.
  bool parse(int argc, char** argv, std::vector<std::string>& positional) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        print_usage(stdout);
        help_shown_ = true;
        return false;
      }
      if (!arg.starts_with("--")) {
        positional.emplace_back(arg);
        continue;
      }
      std::string_view body = arg.substr(2);
      std::string_view name = body;
      std::string_view value;
      bool has_value = false;
      if (std::size_t eq = body.find('='); eq != std::string_view::npos) {
        name = body.substr(0, eq);
        value = body.substr(eq + 1);
        has_value = true;
      }
      Flag* flag = find(name);
      if (flag == nullptr) {
        std::fprintf(stderr, "%s: unknown flag --%.*s\n", tool_.c_str(),
                     static_cast<int>(name.size()), name.data());
        print_usage(stderr);
        return false;
      }
      if (flag->set) {
        if (has_value) {
          std::fprintf(stderr, "%s: --%s takes no value\n", tool_.c_str(),
                       flag->name.c_str());
          print_usage(stderr);
          return false;
        }
        flag->set();
      } else {
        if (!has_value || !flag->set_value(value)) {
          std::fprintf(stderr, "%s: bad value for --%s=%s\n", tool_.c_str(),
                       flag->name.c_str(), flag->value_name.c_str());
          print_usage(stderr);
          return false;
        }
      }
    }
    return true;
  }

  /// True when parse() returned false because of --help (exit 0) rather
  /// than a parse error (exit non-zero).
  [[nodiscard]] bool help_shown() const { return help_shown_; }

  void print_usage(FILE* out) const {
    std::fprintf(out, "usage: %s %s%s[flags]\n", tool_.c_str(),
                 positional_.c_str(), positional_.empty() ? "" : " ");
    for (const Flag& f : flags_) {
      std::string left = "--" + f.name;
      if (!f.value_name.empty()) left += "=" + f.value_name;
      std::fprintf(out, "  %-22s %s\n", left.c_str(), f.help.c_str());
    }
    std::fprintf(out, "  %-22s %s\n", "--help", "show this message");
  }

 private:
  struct Flag {
    std::string name;
    std::string value_name;  // empty for boolean switches
    std::string help;
    std::function<void()> set;
    std::function<bool(std::string_view)> set_value;
  };

  Flag* find(std::string_view name) {
    for (Flag& f : flags_) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  std::string tool_;
  std::string positional_;
  std::vector<Flag> flags_;
  bool help_shown_ = false;
};

}  // namespace wow::tools
