#!/usr/bin/env bash
# Multi-process localhost smoke test: three wowd daemons over real UDP
# sockets must converge to one ring, answer an IPOP ping across the
# overlay, and exit cleanly on SIGTERM / the stop command.
#
# Usage: tools/wowd_smoke.sh [build-dir]   (default: ./build)
set -u

build="${1:-build}"
wowd="$build/src/apps/wowd"
wowctl="$build/tools/wowctl"
workdir="$(mktemp -d /tmp/wowd_smoke.XXXXXX)"
base_port=17101
pids=()

fail() {
  echo "FAIL: $*" >&2
  for i in 1 2 3; do
    sed 's/^/  wowd'"$i"': /' "$workdir/wowd$i.log" >&2 2>/dev/null
  done
  kill "${pids[@]}" 2>/dev/null
  rm -rf "$workdir"
  exit 1
}

[ -x "$wowd" ] || fail "$wowd not built"
[ -x "$wowctl" ] || fail "$wowctl not built"

# --- bring up three daemons ---------------------------------------------
# Node 1 is the well-known bootstrap endpoint; 2 and 3 join through it.
bootstrap="brunet.udp://127.0.0.1:$base_port"
for i in 1 2 3; do
  port=$((base_port + i - 1))
  boot_flag="--bootstrap=$bootstrap"
  [ "$i" = 1 ] && boot_flag=""   # the seed node has nobody to call
  "$wowd" --port=$port --vip=10.128.0.$i --ip=127.0.0.1 \
          --status-sock="$workdir/wowd$i.sock" --maintenance-ms=100 \
          --seed=$i $boot_flag >"$workdir/wowd$i.log" 2>&1 &
  pids[$i]=$!
done

# --- wait for one ring ---------------------------------------------------
# In a 3-node ring every node holds 2 structured-near connections: each
# node is linked to both others.  (routable() is not asserted: it wants
# a near peer on EACH ring half, which three random addresses cannot
# guarantee — at N=3 near:2 everywhere IS the single-ring condition.)
converged=0
for _ in $(seq 1 100); do
  ok=0
  for i in 1 2 3; do
    status=$("$wowctl" --sock="$workdir/wowd$i.sock" status 2>/dev/null)
    echo "$status" | grep -q '"near":2' || continue
    ok=$((ok + 1))
  done
  if [ "$ok" = 3 ]; then converged=1; break; fi
  sleep 0.2
done
[ "$converged" = 1 ] || fail "no single ring within 20s"
echo "ok: 3-daemon ring converged"

# Every pair must know each other (peers lists are consistent).
for i in 1 2 3; do
  peers=$("$wowctl" --sock="$workdir/wowd$i.sock" peers) \
    || fail "peers command failed on node $i"
  count=$(echo "$peers" | grep -o '"addr"' | wc -l)
  [ "$count" -ge 2 ] || fail "node $i sees $count peers, want >= 2"
done
echo "ok: peer tables consistent"

# --- IPOP ping across the overlay ---------------------------------------
ping=$("$wowctl" --sock="$workdir/wowd1.sock" ping 10.128.0.3) \
  || fail "ping command failed"
echo "$ping" | grep -q '"replied":true' || fail "no ICMP reply: $ping"
echo "ok: overlay ping 10.128.0.1 -> 10.128.0.3 ($ping)"

# --- graceful shutdown ---------------------------------------------------
# Node 3 stops by command, 1 and 2 by SIGTERM; all must exit 0 promptly.
"$wowctl" --sock="$workdir/wowd3.sock" stop >/dev/null \
  || fail "stop command failed"
kill -TERM "${pids[1]}" "${pids[2]}"
for i in 1 2 3; do
  deadline=$((SECONDS + 10))
  while kill -0 "${pids[$i]}" 2>/dev/null; do
    [ "$SECONDS" -lt "$deadline" ] || fail "wowd$i did not exit"
    sleep 0.1
  done
  wait "${pids[$i]}"
  rc=$?
  [ "$rc" = 0 ] || fail "wowd$i exited with $rc"
done
echo "ok: clean shutdown (stop command + SIGTERM)"

rm -rf "$workdir"
echo "PASS: wowd smoke"
