#!/usr/bin/env bash
# Layering audit (DESIGN §17): the protocol stack must be
# host-environment-agnostic.  src/p2p, src/ipop, src/vtcp and src/apps
# reach time, timers, randomness and the wire ONLY through the seam
# headers (sim/timer_service.h, sim/event_fn.h, p2p/edge.h) and plain
# value types (net/addr.h, transport/uri.h) — never through the
# simulator, the simulated WAN, or the realtime backend directly.
#
# Run from the repo root (CTest passes WORKING_DIRECTORY).  Exits 1 and
# prints every offending include when the invariant is broken.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

layers="src/p2p src/ipop src/vtcp src/apps"
fail=0

# Hard bans: backend implementation headers.  (sim/simulator.h and
# net/network.h are the two the refactor evicted; the rest keep the
# door shut.)
banned='sim/simulator\.h|net/network\.h|net/host\.h|net/nat\.h|net/faults\.h|net/sim_edge\.h|transport/realtime\.h|transport/udp_edge\.h|transport/loopback\.h'
# src/apps/wowd.cpp is exempt: the daemon MAIN is a composition root —
# precisely the place that wires a concrete backend (like testbed and
# the tests are for the sim backend).  It must never be library code;
# the CMake check below pins that.
hits=$(grep -rnE "#include \"($banned)\"" $layers 2>/dev/null \
       | grep -v '^src/apps/wowd\.cpp:')
if [ -n "$hits" ]; then
  echo "layering violation: protocol layers include backend headers:" >&2
  echo "$hits" >&2
  fail=1
fi

# Whitelist check: the ONLY sim/ and net/ headers the protocol layers
# may include are the seam and value-type headers.
allowed='sim/timer_service\.h|sim/event_fn\.h|net/addr\.h'
hits=$(grep -rnE '#include "(sim|net)/' $layers 2>/dev/null \
       | grep -v '^src/apps/wowd\.cpp:' \
       | grep -vE "#include \"($allowed)\"")
if [ -n "$hits" ]; then
  echo "layering violation: non-whitelisted sim/net include:" >&2
  echo "$hits" >&2
  fail=1
fi

# wowd is the one exception: it is a MAIN, not a library — the daemon
# is precisely the place that wires a concrete backend.  Exclude it
# from the scan above by keeping it out of those directories' library
# sources; the build puts wowd.cpp in src/apps but it may only appear
# in the executable target.  Verify the library list never grows it.
if grep -qE '^\s*wowd\.cpp' src/apps/CMakeLists.txt; then
  echo "layering violation: wowd.cpp listed as a wow_apps library source" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "layering check OK: protocol layers are backend-agnostic"
fi
exit "$fail"
