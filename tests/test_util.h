#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ipop/ipop_node.h"
#include "net/network.h"
#include "p2p/node.h"
#include "sim/simulator.h"
#include "transport/uri.h"

namespace wow::testing {

/// A small all-public overlay for protocol tests: `n` hosts at one site,
/// each running one P2P node; every node bootstraps off node 0.
struct PublicOverlay {
  explicit PublicOverlay(int n, std::uint64_t seed = 7,
                         p2p::NodeConfig base = {})
      : sim(seed), network(sim) {
    site = network.add_site("site0");
    for (int i = 0; i < n; ++i) {
      auto ip = net::Ipv4Addr(128, 1, static_cast<std::uint8_t>(i / 250),
                              static_cast<std::uint8_t>(1 + i % 250));
      net::Host::Config hc;
      hc.name = "host" + std::to_string(i);
      auto& host = network.add_host(ip, net::Network::kInternet, site, hc);
      hosts.push_back(&host);
      p2p::NodeConfig cfg = base;
      cfg.port = 17000;
      if (i > 0) {
        cfg.bootstrap = {transport::Uri{
            transport::TransportKind::kUdp,
            net::Endpoint{hosts[0]->ip(), 17000}}};
      }
      nodes.push_back(std::make_unique<p2p::Node>(
          p2p::NodeDeps::sim(sim, network, host), cfg));
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  /// Count nodes that report full routability.
  [[nodiscard]] int routable_count() const {
    int c = 0;
    for (const auto& n : nodes) {
      if (n->routable()) ++c;
    }
    return c;
  }

  sim::Simulator sim;
  net::Network network;
  net::SiteId site = 0;
  /// Physical hosts, parallel to `nodes` (the node no longer exposes
  /// its host — the transport seam hides the simulated network).
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<p2p::Node>> nodes;
};

/// A small virtual cluster for IPOP/TCP tests: one public router node
/// plus `n` IPOP compute nodes (all public hosts at one site).  Virtual
/// IPs are 172.16.1.(i+2), matching the paper's addressing.
struct IpopOverlay {
  explicit IpopOverlay(int n, std::uint64_t seed = 7,
                       p2p::NodeConfig base = {})
      : sim(seed), network(sim) {
    site = network.add_site("site0");

    net::Host::Config rc;
    rc.name = "router";
    auto& router_host = network.add_host(net::Ipv4Addr(128, 1, 0, 1),
                                         net::Network::kInternet, site, rc);
    p2p::NodeConfig router_cfg = base;
    router_cfg.port = 17000;
    router = std::make_unique<p2p::Node>(
        p2p::NodeDeps::sim(sim, network, router_host), router_cfg);
    auto bootstrap = transport::Uri{
        transport::TransportKind::kUdp,
        net::Endpoint{router_host.ip(), 17000}};

    for (int i = 0; i < n; ++i) {
      auto ip = net::Ipv4Addr(128, 2, static_cast<std::uint8_t>(i / 250),
                              static_cast<std::uint8_t>(1 + i % 250));
      net::Host::Config hc;
      hc.name = "vmhost" + std::to_string(i);
      auto& host = network.add_host(ip, net::Network::kInternet, site, hc);
      ipop::IpopNode::Config cfg;
      cfg.vip = net::Ipv4Addr(172, 16, 1, static_cast<std::uint8_t>(i + 2));
      cfg.p2p = base;
      cfg.p2p.port = 17000;
      cfg.p2p.bootstrap = {bootstrap};
      nodes.push_back(
          std::make_unique<ipop::IpopNode>(
          p2p::NodeDeps::sim(sim, network, host), cfg));
    }
  }

  void start_all() {
    router->start();
    for (auto& n : nodes) n->start();
  }

  [[nodiscard]] net::Ipv4Addr vip(int i) const { return nodes[static_cast<std::size_t>(i)]->vip(); }

  sim::Simulator sim;
  net::Network network;
  net::SiteId site = 0;
  std::unique_ptr<p2p::Node> router;
  std::vector<std::unique_ptr<ipop::IpopNode>> nodes;
};

}  // namespace wow::testing
