#include <gtest/gtest.h>

#include <numeric>

#include "test_util.h"
#include "vtcp/tcp.h"

namespace wow::vtcp {
namespace {

using testing::IpopOverlay;

/// Fixture: a 3-node IPOP cluster with TCP stacks on nodes 0 and 1,
/// pre-warmed so the overlay ring exists before any test traffic.
class VtcpTest : public ::testing::Test {
 protected:
  VtcpTest() : net(3) {
    net.start_all();
    net.sim.run_until(kMinute);
    stack0 = std::make_unique<TcpStack>(net.sim, *net.nodes[0]);
    stack1 = std::make_unique<TcpStack>(net.sim, *net.nodes[1]);
  }

  IpopOverlay net;
  std::unique_ptr<TcpStack> stack0;
  std::unique_ptr<TcpStack> stack1;
};

TEST(SegmentWire, RoundTrip) {
  Segment s;
  s.src_port = 1111;
  s.dst_port = 2222;
  s.seq = 0xdeadbeef;
  s.ack = 0xcafebabe;
  s.flags = kSyn | kAck;
  s.window = 65536;
  s.payload = Bytes{1, 2, 3, 4};
  auto t = Segment::parse(s.serialize());
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->src_port, s.src_port);
  EXPECT_EQ(t->dst_port, s.dst_port);
  EXPECT_EQ(t->seq, s.seq);
  EXPECT_EQ(t->ack, s.ack);
  EXPECT_EQ(t->flags, s.flags);
  EXPECT_EQ(t->window, s.window);
  EXPECT_EQ(t->payload, s.payload);
}

TEST_F(VtcpTest, HandshakeEstablishesBothEnds) {
  std::shared_ptr<TcpSocket> server;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) { server = s; });

  bool client_up = false;
  auto client = stack0->connect(net.vip(1), 80);
  client->set_established_handler([&] { client_up = true; });

  net.sim.run_for(10 * kSecond);
  EXPECT_TRUE(client_up);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->state(), TcpSocket::State::kEstablished);
  EXPECT_EQ(client->state(), TcpSocket::State::kEstablished);
}

TEST_F(VtcpTest, ConnectToClosedPortIsRefused) {
  bool error = false;
  auto client = stack0->connect(net.vip(1), 81);
  client->set_closed_handler([&](bool err) { error = err; });
  net.sim.run_for(10 * kSecond);
  EXPECT_TRUE(error);
  EXPECT_EQ(client->state(), TcpSocket::State::kClosed);
}

TEST_F(VtcpTest, SmallMessageRoundTrip) {
  Bytes received;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    s->set_data_handler([&received, s](const Bytes& data) {
      received.insert(received.end(), data.begin(), data.end());
      s->send(Bytes{'o', 'k'});
    });
  });

  Bytes reply;
  auto client = stack0->connect(net.vip(1), 80);
  client->set_data_handler([&](const Bytes& data) {
    reply.insert(reply.end(), data.begin(), data.end());
  });
  client->set_established_handler([&] {
    client->send(Bytes{'h', 'i'});
  });

  net.sim.run_for(20 * kSecond);
  EXPECT_EQ(received, (Bytes{'h', 'i'}));
  EXPECT_EQ(reply, (Bytes{'o', 'k'}));
}

TEST_F(VtcpTest, BulkTransferDeliversEveryByteInOrder) {
  // 2 MB transfer with pattern verification.
  constexpr std::size_t kTotal = 2 * 1024 * 1024;
  std::size_t got = 0;
  bool corrupt = false;
  bool server_eof = false;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    s->set_data_handler([&](const Bytes& data) {
      for (std::uint8_t b : data) {
        if (b != static_cast<std::uint8_t>(got * 131 % 251)) corrupt = true;
        ++got;
      }
    });
    s->set_closed_handler([&](bool) { server_eof = true; });
  });

  auto client = stack0->connect(net.vip(1), 80);
  std::size_t queued = 0;
  auto feed = [&] {
    while (queued < kTotal && client->send_buffer_room() > 0) {
      std::size_t n = std::min<std::size_t>(client->send_buffer_room(),
                                            std::min<std::size_t>(
                                                kTotal - queued, 16384));
      Bytes chunk(n);
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = static_cast<std::uint8_t>((queued + i) * 131 % 251);
      }
      client->send(std::move(chunk));
      queued += n;
    }
    if (queued >= kTotal) client->close();
  };
  client->set_established_handler(feed);
  client->set_writable_handler(feed);

  net.sim.run_for(5 * kMinute);
  EXPECT_EQ(got, kTotal);
  EXPECT_FALSE(corrupt);
  EXPECT_TRUE(server_eof);
}

TEST_F(VtcpTest, SurvivesPacketLoss) {
  // Introduce 3% loss on the same-site path.
  net.network.set_same_site(net::LinkModel{1 * kMillisecond,
                                           100 * kMicrosecond, 0.03});
  constexpr std::size_t kTotal = 256 * 1024;
  std::size_t got = 0;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    s->set_data_handler([&](const Bytes& data) { got += data.size(); });
  });

  auto client = stack0->connect(net.vip(1), 80);
  std::size_t queued = 0;
  auto feed = [&] {
    while (queued < kTotal && client->send_buffer_room() > 0) {
      std::size_t n =
          std::min<std::size_t>(client->send_buffer_room(),
                                std::min<std::size_t>(kTotal - queued, 8192));
      client->send(Bytes(n, 0x42));
      queued += n;
    }
  };
  client->set_established_handler(feed);
  client->set_writable_handler(feed);

  net.sim.run_for(10 * kMinute);
  EXPECT_EQ(got, kTotal);
  EXPECT_GT(client->stats().retransmits, 0u);
}

TEST_F(VtcpTest, TransferStallsDuringOutageAndResumes) {
  // The §V-C behaviour: the server's IPOP dies mid-transfer and comes
  // back; TCP retransmission rides out the outage and the stream
  // completes with no application action.
  constexpr std::size_t kTotal = 48 * 1024 * 1024;
  std::size_t got = 0;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    s->set_data_handler([&](const Bytes& data) { got += data.size(); });
  });

  auto client = stack0->connect(net.vip(1), 80);
  std::size_t queued = 0;
  auto feed = [&] {
    while (queued < kTotal && client->send_buffer_room() > 0) {
      std::size_t n =
          std::min<std::size_t>(client->send_buffer_room(),
                                std::min<std::size_t>(kTotal - queued, 8192));
      client->send(Bytes(n, 0x55));
      queued += n;
    }
  };
  client->set_established_handler(feed);
  client->set_writable_handler(feed);

  net.sim.run_for(1 * kSecond);
  std::size_t before_outage = got;
  EXPECT_GT(before_outage, 0u);
  EXPECT_LT(before_outage, kTotal);

  // Kill the receiving node's IPOP process for a while.
  net.nodes[1]->stop();
  net.sim.run_for(30 * kSecond);
  std::size_t during = got;
  net.nodes[1]->restart();
  net.sim.run_for(5 * kMinute);

  EXPECT_EQ(got, kTotal) << "transfer did not resume after restart";
  EXPECT_GE(got, during);
  EXPECT_GT(client->stats().timeouts, 0u);
}

TEST_F(VtcpTest, CloseHandshakeReachesBothSides) {
  bool server_closed = false;
  bool client_closed = false;
  std::shared_ptr<TcpSocket> server;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    server = s;
    s->set_closed_handler([&](bool err) {
      EXPECT_FALSE(err);
      server_closed = true;
    });
  });
  auto client = stack0->connect(net.vip(1), 80);
  client->set_closed_handler([&](bool) { client_closed = true; });
  client->set_established_handler([&] {
    client->send(Bytes{'x'});
    client->close();
  });
  net.sim.run_for(30 * kSecond);
  EXPECT_TRUE(server_closed);
}

TEST_F(VtcpTest, ResetTearsDownPeer) {
  std::shared_ptr<TcpSocket> server;
  bool server_error = false;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    server = s;
    s->set_closed_handler([&](bool err) { server_error = err; });
  });
  auto client = stack0->connect(net.vip(1), 80);
  client->set_established_handler([&] { client->reset(); });
  net.sim.run_for(10 * kSecond);
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server_error);
  EXPECT_EQ(server->state(), TcpSocket::State::kClosed);
}

TEST_F(VtcpTest, ManyConcurrentConnections) {
  int established = 0;
  int completed = 0;
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    s->set_data_handler([s](const Bytes& data) { s->send(data); });
  });
  std::vector<std::shared_ptr<TcpSocket>> clients;
  for (int i = 0; i < 20; ++i) {
    auto c = stack0->connect(net.vip(1), 80);
    c->set_established_handler([&established, c, i] {
      ++established;
      c->send(Bytes(static_cast<std::size_t>(i + 1), 0x11));
    });
    c->set_data_handler([&completed, i, got = std::size_t{0}](
                            const Bytes& data) mutable {
      got += data.size();
      if (got == static_cast<std::size_t>(i + 1)) ++completed;
    });
    clients.push_back(std::move(c));
  }
  net.sim.run_for(kMinute);
  EXPECT_EQ(established, 20);
  EXPECT_EQ(completed, 20);
}

TEST_F(VtcpTest, RttEstimateConvergesNearPathRtt) {
  stack1->listen(80, [&](std::shared_ptr<TcpSocket> s) {
    s->set_data_handler([](const Bytes&) {});
  });
  auto client = stack0->connect(net.vip(1), 80);
  std::size_t sent = 0;
  auto feed = [&] {
    if (sent < 512 * 1024 && client->send_buffer_room() > 0) {
      client->send(Bytes(8192, 1));
      sent += 8192;
    }
  };
  client->set_established_handler(feed);
  client->set_writable_handler(feed);
  net.sim.run_for(2 * kMinute);
  // Path RTT is a few ms (same site, via overlay); RTO should have come
  // down from the 1 s initial value.
  EXPECT_LT(client->current_rto_seconds(), 1.0);
}

}  // namespace
}  // namespace wow::vtcp
