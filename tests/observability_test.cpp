#include <gtest/gtest.h>

#include <string>

#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "test_util.h"

namespace wow {
namespace {

TEST(MetricsRegistry, CounterGetOrCreate) {
  MetricsRegistry reg;
  MetricLabels a{"n1", "node"};
  MetricCounter& c1 = reg.counter("pkts", a);
  c1.inc();
  c1.inc(4);
  MetricCounter& c2 = reg.counter("pkts", a);
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(c2.value(), 5u);
  // Different labels => different instance.
  MetricCounter& c3 = reg.counter("pkts", MetricLabels{"n2", "node"});
  EXPECT_NE(&c1, &c3);
  EXPECT_EQ(c3.value(), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, GaugeCallbackAndRemove) {
  MetricsRegistry reg;
  double live = 1.5;
  MetricId id = reg.add_gauge("depth", {}, [&live] { return live; });
  live = 7.0;
  auto samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, MetricsRegistry::Sample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(samples[0].value, 7.0);

  reg.remove(id);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());

  // Re-registering the same name revives the slot with the new callback.
  double other = 3.0;
  reg.add_gauge("depth", {}, [&other] { return other; });
  samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);
}

TEST(MetricsRegistry, HistogramRegistersAndExports) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {"", "net"}, 0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(999.0);  // clamps into the last bin
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(&h, &reg.histogram("lat", {"", "net"}, 0.0, 10.0, 5));

  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"name\":\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[1,1,0,0,1]"), std::string::npos);

  std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE wow_lat histogram"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("wow_lat_count"), std::string::npos);
}

TEST(MetricsRegistry, JsonCarriesLabels) {
  MetricsRegistry reg;
  reg.counter("pkts", MetricLabels{"abcd", "node"}).inc(42);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"node\":\"abcd\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"node\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
}

TEST(Logger, ComponentLevelFiltering) {
  Logger logger(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "linking"));
  logger.set_component_level("linking", LogLevel::kDebug);
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug, "linking"));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "node"));  // untouched
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn, "node"));

  // Subtree fallback: "node/<brief>" inherits the "node" override; an
  // exact entry beats the subtree.
  logger.set_component_level("node", LogLevel::kDebug);
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug, "node/ab12"));
  logger.set_component_level("node/ab12", LogLevel::kError);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "node/ab12"));
  EXPECT_TRUE(logger.enabled(LogLevel::kDebug, "node/cd34"));

  logger.clear_component_levels();
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug, "node/cd34"));
}

TEST(Logger, WowLogBuildsMessageLazily) {
  Logger logger(LogLevel::kWarn);
  int built = 0;
  auto expensive = [&built] {
    ++built;
    return std::string("message");
  };
  WOW_LOG(logger, LogLevel::kDebug, 0, "linking", expensive());
  EXPECT_EQ(built, 0);  // disabled: never constructed
  logger.set_component_level("linking", LogLevel::kTrace);
  // Route the enabled call to /dev/null rather than polluting stderr.
  std::FILE* sink = std::fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  Logger quiet(LogLevel::kWarn, sink);
  quiet.set_component_level("linking", LogLevel::kTrace);
  WOW_LOG(quiet, LogLevel::kDebug, 0, "linking", expensive());
  EXPECT_EQ(built, 1);
  std::fclose(sink);
}

TEST(Tracer, DisabledIsNullObject) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.event(0, "c", "n", "ev", {{"k", 1}});
  EXPECT_EQ(tracer.begin_span(0, "c", "n", "ev"), 0u);
  tracer.end_span(0, "c", "n", "ev", 0);
}

TEST(Tracer, EmitsJsonRecords) {
  Tracer tracer;
  StringTraceSink sink;
  tracer.attach(&sink);
  tracer.event(1500000, "node", "ab12", "packet.send",
               {{"dst", "cd34"}, {"hops", 3}});
  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_EQ(sink.lines()[0],
            "{\"t\":1.500000,\"ev\":\"packet.send\",\"c\":\"node\","
            "\"node\":\"ab12\",\"dst\":\"cd34\",\"hops\":3}");
}

TEST(Tracer, SpansCorrelate) {
  Tracer tracer;
  StringTraceSink sink;
  tracer.attach(&sink);
  std::uint64_t s1 = tracer.begin_span(0, "linking", "n", "link.attempt");
  std::uint64_t s2 = tracer.begin_span(0, "linking", "n", "link.attempt");
  EXPECT_NE(s1, 0u);
  EXPECT_NE(s2, s1);
  tracer.end_span(2000000, "linking", "n", "link.established", s1,
                  {{"elapsed_s", 2.0}});
  ASSERT_EQ(sink.lines().size(), 3u);
  std::string want = "\"span\":" + std::to_string(s1);
  EXPECT_NE(sink.lines()[0].find(want), std::string::npos);
  EXPECT_NE(sink.lines()[2].find(want), std::string::npos);
  tracer.detach();
  EXPECT_FALSE(tracer.enabled());
}

TEST(Tracer, EscapesStrings) {
  Tracer tracer;
  StringTraceSink sink;
  tracer.attach(&sink);
  tracer.event(0, "c", "", "ev", {{"msg", "a\"b\\c\nd"}});
  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_NE(sink.lines()[0].find("a\\\"b\\\\c\\nd"), std::string::npos);
}

/// End-to-end: a small overlay run with a sink attached must produce the
/// join/CTM/linking event stream trace_report consumes, and the metrics
/// registry must cover every instrumented subsystem.
TEST(OverlayObservability, TraceAndMetricsCoverJoin) {
  testing::PublicOverlay net(8, 11);
  StringTraceSink sink;
  net.sim.trace().attach(&sink);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  for (auto& a : net.nodes) {
    for (auto& b : net.nodes) {
      if (a != b) a->send_data(b->address(), Bytes{1, 2, 3});
    }
  }
  net.sim.run_for(30 * kSecond);
  net.sim.trace().detach();

  EXPECT_EQ(net.routable_count(), 8);

  auto count_event = [&](std::string_view name) {
    std::string needle = "\"ev\":\"";
    needle += name;
    needle += "\"";
    std::size_t n = 0;
    for (const std::string& line : sink.lines()) {
      if (line.find(needle) != std::string::npos) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_event("node.start"), 8u);
  EXPECT_EQ(count_event("node.routable"), 8u);
  EXPECT_GT(count_event("ctm.request"), 0u);
  EXPECT_GT(count_event("ctm.reply"), 0u);
  EXPECT_GT(count_event("link.attempt"), 0u);
  EXPECT_GT(count_event("link.established"), 0u);
  EXPECT_GT(count_event("conn.added"), 0u);
  EXPECT_GT(count_event("packet.deliver"), 0u);

  // Every record is one-line JSON ending in '}' with the required head.
  for (const std::string& line : sink.lines()) {
    EXPECT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
  }

  std::string json = net.sim.metrics().to_json();
  EXPECT_NE(json.find("\"component\":\"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"transport\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"node\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"linking\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node_connections\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sim_pending_events\""), std::string::npos);
}

/// Destroying a component must unregister its gauges: a snapshot taken
/// afterwards cannot touch freed state.
TEST(OverlayObservability, ComponentDestructionUnregistersGauges) {
  sim::Simulator sim(5);
  std::size_t sim_only = sim.metrics().size();
  {
    net::Network network(sim);
    std::size_t with_net = sim.metrics().size();
    EXPECT_GT(with_net, sim_only);
    auto site = network.add_site("s");
    auto& host = network.add_host(net::Ipv4Addr(128, 1, 0, 1),
                                  net::Network::kInternet, site, {});
    {
      p2p::Node node(p2p::NodeDeps::sim(sim, network, host), {});
      EXPECT_GT(sim.metrics().size(), with_net);
      (void)sim.metrics().to_json();  // all gauges evaluable while alive
    }
    EXPECT_EQ(sim.metrics().size(), with_net);
    (void)sim.metrics().to_json();  // ...and after the node is gone
  }
  EXPECT_EQ(sim.metrics().size(), sim_only);
}

}  // namespace
}  // namespace wow
