// Megascale profile tests (DESIGN §14): ring convergence + oracle
// sweep on the flyweight protocol-only profile, greedy hop sanity, and
// the bytes/node accounting budget.
#include "wow/megascale.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace wow {
namespace {

MegascaleConfig small_config(int nodes, std::uint64_t seed) {
  MegascaleConfig cfg;
  cfg.seed = seed;
  cfg.nodes = nodes;
  cfg.flyweight = true;
  cfg.batched_delivery = true;
  cfg.join_stagger = 50 * kMillisecond;
  cfg.check_period = 10 * kSecond;
  cfg.settle_horizon = 30 * kMinute;
  return cfg;
}

TEST(MegascaleTest, SmallFlyweightRingConvergesAndRoutes) {
  MegascaleNet net(small_config(64, 7));
  auto converged_at = net.run_until_converged();
  ASSERT_TRUE(converged_at.has_value()) << "64-node ring did not converge";

  p2p::OracleReport oracle = net.oracle_check(/*max_route_pairs=*/500);
  EXPECT_TRUE(oracle.ok) << oracle.to_string();

  MegascaleNet::HopStats hops = net.sample_greedy_hops(400);
  EXPECT_EQ(hops.unreached, 0u);
  EXPECT_GT(hops.sampled, 0u);
  EXPECT_GE(hops.mean, 1.0);
}

TEST(MegascaleTest, DefaultProfileAlsoConverges) {
  MegascaleConfig cfg = small_config(48, 11);
  cfg.flyweight = false;
  cfg.batched_delivery = false;  // the exact, non-batched event path
  MegascaleNet net(cfg);
  auto converged_at = net.run_until_converged();
  ASSERT_TRUE(converged_at.has_value()) << "48-node default ring stuck";
  p2p::OracleReport oracle = net.oracle_check(/*max_route_pairs=*/300);
  EXPECT_TRUE(oracle.ok) << oracle.to_string();
}

TEST(MegascaleTest, FlyweightProtocolStateWithinBudget) {
  // The §14 budget: live dynamic protocol state (connections held,
  // pending operations, health records, flight ring) must average
  // under 1 KB per flyweight node once the ring is steady.
  constexpr double kBudgetBytesPerNode = 1024.0;
  MegascaleNet net(small_config(512, 3));
  auto converged_at = net.run_until_converged();
  ASSERT_TRUE(converged_at.has_value());
  // Let keepalives and stabilization run a few rounds so steady-state
  // state (ping episodes, pending CTMs) is represented, not just the
  // fresh-join minimum.
  net.sim.run_for(5 * kMinute);

  MegascaleNet::MemoryReport mem = net.memory_report();
  EXPECT_EQ(mem.nodes, 512u);
  EXPECT_GT(mem.protocol_state_bytes, 0u);
  EXPECT_LE(mem.protocol_bytes_per_node(), kBudgetBytesPerNode)
      << "flyweight live protocol state blew the 1 KB/node budget: "
      << mem.protocol_bytes_per_node() << " B/node";
  // The flyweight gates must hold: no per-node metrics were registered,
  // and a converged fleet's footprint includes the network fabric.
  EXPECT_GT(mem.network_bytes, 0u);
}

TEST(MegascaleTest, FlyweightKeepsDurableHealthEmpty) {
  // With adaptive timers and quarantine both off, note_rtt must not
  // grow the per-peer health map (the keepalive memory gate).
  MegascaleNet net(small_config(32, 5));
  auto converged_at = net.run_until_converged();
  ASSERT_TRUE(converged_at.has_value());
  net.sim.run_for(5 * kMinute);  // several keepalive rounds
  for (const auto& n : net.nodes) {
    p2p::Node::MemoryFootprint f = n->memory_footprint();
    // keepalive component = object + state; state must be only the
    // bounded ping episodes (< 100 B each, ~5 connections), never an
    // unbounded health ledger.
    EXPECT_LT(f.keepalive, sizeof(p2p::Node) + 1024u);
  }
}

// The acceptance-scale run: 10k nodes converge oracle-green.  Too slow
// without optimization, so it only runs in Release-family builds.
TEST(MegascaleTest, TenThousandNodeRingOracleGreen) {
#ifndef NDEBUG
  GTEST_SKIP() << "10k-node convergence needs an optimized build";
#else
  MegascaleConfig cfg = small_config(10000, 1);
  cfg.join_stagger = 20 * kMillisecond;
  cfg.check_period = 30 * kSecond;
  MegascaleNet net(cfg);
  auto converged_at = net.run_until_converged();
  ASSERT_TRUE(converged_at.has_value()) << "10k-node ring did not converge";

  p2p::OracleReport oracle = net.oracle_check(/*max_route_pairs=*/5000);
  EXPECT_TRUE(oracle.ok) << oracle.to_string();

  MegascaleNet::HopStats hops = net.sample_greedy_hops(2000);
  EXPECT_EQ(hops.unreached, 0u);
  // O((1/k)·log²n) with k=2, log2(10^4)≈13.3 → ~45 hops upper shape;
  // the observed mean sits well under it on a closed ring.
  EXPECT_LT(hops.mean, 45.0);

  // The budget is a steady-state claim: give the retention sweep a few
  // maintenance rounds to drain join-transient links before measuring.
  net.sim.run_for(10 * kMinute);
  MegascaleNet::MemoryReport mem = net.memory_report();
  EXPECT_LE(mem.protocol_bytes_per_node(), 1024.0);
#endif
}

}  // namespace
}  // namespace wow
