#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "common/trace.h"
#include "p2p/node_inspector.h"
#include "test_util.h"

namespace wow {
namespace {

// ---------------------------------------------------------------------
// Histogram percentiles

TEST(HistogramPercentile, AccurateToOneBucketWidth) {
  // 1000 distinct values, one per bucket: the interpolated percentile
  // must land within a bucket width of the exact order statistic.
  Histogram h(0.0, 1000.0, 1000);
  std::vector<double> exact_values;
  for (int i = 0; i < 1000; ++i) {
    h.add(i + 0.5);
    exact_values.push_back(i + 0.5);
  }
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    double exact = percentile(exact_values, p);
    EXPECT_NEAR(h.percentile(p), exact, 1.0) << "p=" << p;
  }
}

TEST(HistogramPercentile, CoarseBucketsDegradeToBucketWidth) {
  Histogram coarse(0.0, 1000.0, 10);  // bucket width 100
  std::vector<double> exact_values;
  for (int i = 0; i < 1000; ++i) {
    coarse.add(i + 0.5);
    exact_values.push_back(i + 0.5);
  }
  for (double p : {10.0, 50.0, 95.0}) {
    EXPECT_NEAR(coarse.percentile(p), percentile(exact_values, p), 100.0)
        << "p=" << p;
  }
}

TEST(HistogramPercentile, SkewedMassStaysAccurate) {
  // 99% of the mass at the low end, 1% in the tail: p50 reads from the
  // dense region, p99.5 from the sparse tail.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 990; ++i) h.add(5.5);
  for (int i = 0; i < 10; ++i) h.add(90.5);
  EXPECT_NEAR(h.percentile(50.0), 5.5, 1.0);
  EXPECT_NEAR(h.percentile(99.5), 90.5, 1.0);
}

TEST(HistogramPercentile, ClampedTailsReportEdgeBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);  // clamps into the first bucket
  h.add(500.0);   // clamps into the last
  EXPECT_LT(h.percentile(1.0), 1.0 + 1e-9);
  EXPECT_GT(h.percentile(99.0), 9.0 - 1e-9);
  EXPECT_EQ(h.total(), 2u);
}

TEST(HistogramPercentile, EmptyHistogramIsZero) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

// ---------------------------------------------------------------------
// Enum drift: adding an enumerator without a name (or a duplicate name)
// must fail here, not silently print "unknown" in reports.

TEST(EnumDrift, TraceClassNamesUniqueAndKnown) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(TraceClass::kCount); ++i) {
    const char* s = to_string(static_cast<TraceClass>(i));
    EXPECT_STRNE(s, "unknown") << "TraceClass " << i;
    EXPECT_TRUE(names.insert(s).second) << "duplicate name " << s;
  }
  EXPECT_STREQ(to_string(TraceClass::kCount), "unknown");
}

TEST(EnumDrift, FlightKindNamesUniqueAndKnown) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(FlightKind::kCount); ++i) {
    const char* s = to_string(static_cast<FlightKind>(i));
    EXPECT_STRNE(s, "unknown") << "FlightKind " << i;
    EXPECT_TRUE(names.insert(s).second) << "duplicate name " << s;
  }
  EXPECT_STREQ(to_string(FlightKind::kCount), "unknown");
}

// ---------------------------------------------------------------------
// Deterministic sampling

TEST(TraceSampling, VerdictIsDeterministicPerKey) {
  StringTraceSink sink_a;
  StringTraceSink sink_b;
  Tracer a;
  Tracer b;
  a.attach(&sink_a);
  b.attach(&sink_b);
  a.set_sample_rate(0.25);
  b.set_sample_rate(0.25);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    EXPECT_EQ(a.sample(TraceClass::kPacket, key),
              b.sample(TraceClass::kPacket, key))
        << "key " << key;
  }
  EXPECT_EQ(a.dropped_by_sampling(), b.dropped_by_sampling());
}

TEST(TraceSampling, KeptFractionTracksRate) {
  StringTraceSink sink;
  Tracer t;
  t.attach(&sink);
  t.set_sample_rate(0.25);
  const std::uint64_t n = 100000;
  std::uint64_t kept = 0;
  for (std::uint64_t key = 0; key < n; ++key) {
    if (t.sample(TraceClass::kPacket, key)) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) / static_cast<double>(n), 0.25,
              0.01);
  EXPECT_EQ(kept + t.dropped_by_sampling(), n);
}

TEST(TraceSampling, RateOneShortCircuits) {
  StringTraceSink sink;
  Tracer t;
  t.attach(&sink);  // default rate 1.0
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_TRUE(t.sample(TraceClass::kPacket, key));
  }
  EXPECT_EQ(t.dropped_by_sampling(), 0u);
}

TEST(TraceSampling, RateZeroDropsEverything) {
  StringTraceSink sink;
  Tracer t;
  t.attach(&sink);
  t.set_sample_rate(0.0);
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_FALSE(t.sample(TraceClass::kPacket, key));
  }
  EXPECT_EQ(t.dropped_by_sampling(), 1000u);
}

TEST(TraceSampling, NoSinkMeansNoDropAccounting) {
  // Refusals caused by a detached sink or a disabled class are not
  // "sampling drops" — the gauge must isolate rate-induced loss.
  Tracer t;
  t.set_sample_rate(0.5);
  EXPECT_FALSE(t.sample(TraceClass::kPacket, 1));
  EXPECT_EQ(t.dropped_by_sampling(), 0u);

  StringTraceSink sink;
  t.attach(&sink);
  t.set_class_enabled(TraceClass::kPacket, false);
  EXPECT_FALSE(t.sample(TraceClass::kPacket, 1));
  EXPECT_EQ(t.dropped_by_sampling(), 0u);
}

TEST(TraceSampling, RateIsClamped) {
  Tracer t;
  t.set_sample_rate(7.0);
  EXPECT_EQ(t.sample_rate(), 1.0);
  t.set_sample_rate(-3.0);
  EXPECT_EQ(t.sample_rate(), 0.0);
}

// ---------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorderTest, RingIsBoundedAndOrdered) {
  FlightRecorder fr(4);
  for (int i = 1; i <= 6; ++i) {
    fr.record(i * kSecond, FlightKind::kConnAdded, "peer", i, 0);
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.recorded(), 6u);
  // Oldest -> newest: entries 3..6 survive, 1..2 were overwritten.
  std::vector<std::int32_t> seen;
  fr.for_each([&](const FlightRecorder::Entry& e) { seen.push_back(e.a); });
  EXPECT_EQ(seen, (std::vector<std::int32_t>{3, 4, 5, 6}));
}

TEST(FlightRecorderTest, CapacityZeroDisables) {
  FlightRecorder fr(0);
  fr.record(kSecond, FlightKind::kStart, "x", 1, 2);
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.recorded(), 0u);
}

TEST(FlightRecorderTest, PeerBriefIsTruncatedSafely) {
  FlightRecorder fr(2);
  fr.record(kSecond, FlightKind::kConnLost,
            "a-much-longer-name-than-fits", 1, 2);
  fr.for_each([&](const FlightRecorder::Entry& e) {
    EXPECT_EQ(std::string(e.peer), "a-much-lon");  // 10 chars + NUL
  });
}

TEST(FlightRecorderTest, DumpIsHumanReadable) {
  FlightRecorder fr(8);
  fr.record(500 * kMillisecond, FlightKind::kStart, "", 17000, 0);
  fr.record(2 * kSecond, FlightKind::kConnLost, "ab12cd34", 2, 1);
  std::string dump = fr.dump("deadbeef");
  EXPECT_NE(dump.find("flight[deadbeef]: 2/8 entries (2 recorded)"),
            std::string::npos);
  EXPECT_NE(dump.find("node.start"), std::string::npos);
  EXPECT_NE(dump.find("conn.lost"), std::string::npos);
  EXPECT_NE(dump.find("peer=ab12cd34"), std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics time series

TEST(MetricsTimeSeriesTest, CountersReportWindowDeltas) {
  MetricsRegistry reg;
  MetricCounter& c = reg.counter("reqs", {"n1", "node"});
  MetricsTimeSeries ts(reg);

  c.inc(5);
  ts.sample(kSecond);
  c.inc(3);
  ts.sample(2 * kSecond);
  ts.sample(3 * kSecond);  // idle window

  ASSERT_EQ(ts.series().size(), 1u);
  const auto& s = ts.series()[0];
  EXPECT_EQ(s.name, "reqs");
  ASSERT_EQ(s.points.size(), 3u);
  EXPECT_EQ(s.points[0].value, 5.0);
  EXPECT_EQ(s.points[1].value, 3.0);
  EXPECT_EQ(s.points[2].value, 0.0);
  EXPECT_EQ(s.points[1].t, 2.0);
  EXPECT_EQ(ts.windows(), 3u);
}

TEST(MetricsTimeSeriesTest, GaugesReportLevelsNotDeltas) {
  MetricsRegistry reg;
  double level = 10.0;
  reg.add_gauge("depth", {"", "sim"}, [&] { return level; });
  MetricsTimeSeries ts(reg);
  ts.sample(kSecond);
  level = 4.0;
  ts.sample(2 * kSecond);
  ASSERT_EQ(ts.series().size(), 1u);
  EXPECT_EQ(ts.series()[0].points[0].value, 10.0);
  EXPECT_EQ(ts.series()[0].points[1].value, 4.0);
}

TEST(MetricsTimeSeriesTest, HistogramWindowsCarryPercentiles) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {"n1", "node"}, 0.0, 100.0, 100);
  MetricsTimeSeries ts(reg);

  for (int i = 0; i < 100; ++i) h.add(10.5);
  ts.sample(kSecond);
  // Second window is all-tail: its percentiles must reflect only the
  // window's delta, not the cumulative distribution.
  for (int i = 0; i < 100; ++i) h.add(90.5);
  ts.sample(2 * kSecond);

  ASSERT_EQ(ts.series().size(), 1u);
  const auto& pts = ts.series()[0].points;
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].value, 100.0);  // window sample count
  EXPECT_NEAR(pts[0].p50, 10.5, 1.0);
  EXPECT_EQ(pts[1].value, 100.0);
  EXPECT_NEAR(pts[1].p50, 90.5, 1.0);
  EXPECT_NEAR(pts[1].p99, 90.5, 1.0);
}

TEST(MetricsTimeSeriesTest, ExportsCsvAndJsonl) {
  MetricsRegistry reg;
  reg.counter("reqs", {"n1", "node"}).inc(2);
  MetricsTimeSeries ts(reg);
  ts.sample(kSecond);

  std::string csv = ts.to_csv();
  EXPECT_NE(csv.find("t,name,node,component,kind,value"), std::string::npos);
  EXPECT_NE(csv.find("reqs"), std::string::npos);

  std::string jsonl = ts.to_jsonl();
  EXPECT_NE(jsonl.find("\"name\":\"reqs\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Node inspector and fleet snapshots

TEST(FleetSnapshotTest, InspectorMatchesNodeState) {
  testing::PublicOverlay net(8, 31);
  net.start_all();
  net.sim.run_until(3 * kMinute);

  const p2p::Node& n = *net.nodes[3];
  p2p::NodeSnapshot s =
      p2p::NodeInspector::inspect(n, net.sim.now());
  EXPECT_EQ(s.brief, n.address().brief());
  EXPECT_TRUE(s.running);
  EXPECT_EQ(static_cast<std::size_t>(s.near + s.far + s.leaf + s.shortcut +
                                     s.relay),
            n.connections().size());
  EXPECT_EQ(s.flight_recorded, n.flight().recorded());
  EXPECT_GT(s.flight_recorded, 0u);  // at least node.start + conn.added
  if (s.routable) {
    EXPECT_GE(s.routable_since_s, 0.0);
  }
}

TEST(FleetSnapshotTest, FleetAggregatesAndJsonl) {
  testing::PublicOverlay net(8, 32);
  net.start_all();
  net.sim.run_until(3 * kMinute);

  p2p::FleetSnapshotter snaps(/*per_node_lines=*/true);
  std::vector<p2p::Node*> all;
  for (auto& n : net.nodes) all.push_back(n.get());
  snaps.sample(net.sim.now(), all, net.sim.executed_events(),
               net.sim.pending_events());
  net.sim.run_for(kMinute);
  snaps.sample(net.sim.now(), all, net.sim.executed_events(),
               net.sim.pending_events());

  ASSERT_EQ(snaps.snapshots().size(), 2u);
  const auto& f = snaps.snapshots()[0];
  EXPECT_EQ(f.nodes, 8u);
  EXPECT_EQ(f.running, 8u);
  EXPECT_EQ(static_cast<int>(f.routable), net.routable_count());
  EXPECT_GT(f.conns_p50, 0.0);
  EXPECT_GE(f.conns_max, f.conns_p95);
  EXPECT_GE(f.conns_p95, f.conns_p50);
  EXPECT_GE(f.conns_p50, f.conns_min);
  // Second snapshot has an executed-events rate over the gap.
  EXPECT_GT(snaps.snapshots()[1].events_per_sec, 0.0);

  const std::string& jsonl = snaps.jsonl();
  std::size_t fleet_lines = 0;
  std::size_t node_lines = 0;
  for (std::size_t pos = 0;
       (pos = jsonl.find("{\"kind\":\"fleet\"", pos)) != std::string::npos;
       ++pos) {
    ++fleet_lines;
  }
  for (std::size_t pos = 0;
       (pos = jsonl.find("{\"kind\":\"node\"", pos)) != std::string::npos;
       ++pos) {
    ++node_lines;
  }
  EXPECT_EQ(fleet_lines, 2u);
  EXPECT_EQ(node_lines, 16u);  // 8 nodes x 2 samples
}

TEST(FleetSnapshotTest, PerNodeLinesCanBeDisabled) {
  testing::PublicOverlay net(4, 33);
  net.start_all();
  net.sim.run_until(kMinute);
  p2p::FleetSnapshotter snaps(/*per_node_lines=*/false);
  std::vector<p2p::Node*> all;
  for (auto& n : net.nodes) all.push_back(n.get());
  snaps.sample(net.sim.now(), all, net.sim.executed_events(),
               net.sim.pending_events());
  EXPECT_EQ(snaps.jsonl().find("\"kind\":\"node\""), std::string::npos);
  EXPECT_NE(snaps.jsonl().find("\"kind\":\"fleet\""), std::string::npos);
}

TEST(FleetSnapshotTest, FlightCapacityZeroDisablesRecording) {
  p2p::NodeConfig cfg;
  cfg.flight_capacity = 0;
  testing::PublicOverlay net(4, 34, cfg);
  net.start_all();
  net.sim.run_until(kMinute);
  for (auto& n : net.nodes) {
    EXPECT_EQ(n->flight().recorded(), 0u);
    EXPECT_EQ(n->flight().capacity(), 0u);
  }
}

}  // namespace
}  // namespace wow
