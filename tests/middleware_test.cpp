#include <gtest/gtest.h>

#include <memory>

#include "middleware/cpu.h"
#include "middleware/message_channel.h"
#include "middleware/nfs.h"
#include "middleware/pbs.h"
#include "middleware/pvm.h"
#include "test_util.h"

namespace wow::mw {
namespace {

using testing::IpopOverlay;

// ---------------------------------------------------------------- CPU model

TEST(CpuExecutor, RuntimeScalesWithSpeed) {
  sim::Simulator sim;
  CpuExecutor fast(sim, 2.0);
  CpuExecutor slow(sim, 0.5);
  SimTime fast_done = 0, slow_done = 0;
  fast.execute(10.0, [&] { fast_done = sim.now(); });
  slow.execute(10.0, [&] { slow_done = sim.now(); });
  sim.run();
  EXPECT_EQ(fast_done, from_seconds(5.0));
  EXPECT_EQ(slow_done, from_seconds(20.0));
}

TEST(CpuExecutor, FifoSingleCore) {
  sim::Simulator sim;
  CpuExecutor cpu(sim, 1.0);
  std::vector<int> order;
  cpu.execute(5.0, [&] { order.push_back(1); });
  cpu.execute(1.0, [&] { order.push_back(2); });  // waits behind job 1
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), from_seconds(6.0));
  EXPECT_EQ(cpu.completed(), 2u);
}

TEST(CpuExecutor, BackgroundLoadSlowsNewWork) {
  sim::Simulator sim;
  CpuExecutor cpu(sim, 1.0);
  cpu.set_background_load(1.0);  // one competing process -> half speed
  SimTime done = 0;
  cpu.execute(10.0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, from_seconds(20.0));
}

// ------------------------------------------------------------- MessageChannel

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : net(3) {
    net.start_all();
    net.sim.run_until(kMinute);
    stack0 = std::make_unique<vtcp::TcpStack>(net.sim, *net.nodes[0]);
    stack1 = std::make_unique<vtcp::TcpStack>(net.sim, *net.nodes[1]);
  }

  IpopOverlay net;
  std::unique_ptr<vtcp::TcpStack> stack0;
  std::unique_ptr<vtcp::TcpStack> stack1;
};

TEST_F(ChannelTest, FramesSurviveSegmentation) {
  std::vector<Bytes> received;
  std::shared_ptr<MessageChannel> server;
  stack1->listen(80, [&](std::shared_ptr<vtcp::TcpSocket> s) {
    server = MessageChannel::wrap(std::move(s));
    server->set_message_handler(
        [&](const Bytes& m) { received.push_back(m); });
  });
  auto client = MessageChannel::wrap(stack0->connect(net.vip(1), 80));

  // A large message (crosses many TCP segments), a tiny one, an empty
  // one — framing must keep the boundaries exact.
  Bytes big(50000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i % 251);
  }
  client->send(big);
  client->send(Bytes{42});
  client->send(Bytes{});
  net.sim.run_for(kMinute);

  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0], big);
  EXPECT_EQ(received[1], Bytes{42});
  EXPECT_TRUE(received[2].empty());
}

TEST_F(ChannelTest, BidirectionalTraffic) {
  stack1->listen(80, [&](std::shared_ptr<vtcp::TcpSocket> s) {
    auto channel = MessageChannel::wrap(std::move(s));
    channel->set_message_handler([channel](const Bytes& m) {
      Bytes echo = m;
      echo.push_back(0xff);
      channel->send(echo);
    });
  });
  auto client = MessageChannel::wrap(stack0->connect(net.vip(1), 80));
  Bytes reply;
  client->set_message_handler([&](const Bytes& m) { reply = m; });
  client->send(Bytes{1, 2, 3});
  net.sim.run_for(30 * kSecond);
  EXPECT_EQ(reply, (Bytes{1, 2, 3, 0xff}));
}

// ----------------------------------------------------------------------- NFS

class NfsTest : public ChannelTest {};

TEST_F(NfsTest, ReadWholeFile) {
  NfsServer server(net.sim, *stack1);
  server.create_file("input.dat", 1000000);
  NfsClient client(net.sim, *stack0, net.vip(1));

  bool ok = false, done = false;
  client.read_file("input.dat", [&](bool result) {
    ok = result;
    done = true;
  });
  net.sim.run_for(2 * kMinute);
  ASSERT_TRUE(done);
  EXPECT_TRUE(ok);
  EXPECT_EQ(client.stats().bytes_read, 1000000u);
  EXPECT_EQ(server.stats().bytes_read, 1000000u);
}

TEST_F(NfsTest, ReadMissingFileFails) {
  NfsServer server(net.sim, *stack1);
  NfsClient client(net.sim, *stack0, net.vip(1));
  bool ok = true, done = false;
  client.read_file("nope.dat", [&](bool result) {
    ok = result;
    done = true;
  });
  net.sim.run_for(kMinute);
  ASSERT_TRUE(done);
  EXPECT_FALSE(ok);
}

TEST_F(NfsTest, WriteCreatesAndGrowsFile) {
  NfsServer server(net.sim, *stack1);
  NfsClient client(net.sim, *stack0, net.vip(1));
  bool done = false;
  client.write_file("out.dat", 300000, [&](bool ok) {
    EXPECT_TRUE(ok);
    done = true;
  });
  net.sim.run_for(kMinute);
  ASSERT_TRUE(done);
  EXPECT_EQ(server.file_size("out.dat"), 300000u);
}

TEST_F(NfsTest, SequentialTransfersQueue) {
  NfsServer server(net.sim, *stack1);
  server.create_file("a", 100000);
  NfsClient client(net.sim, *stack0, net.vip(1));
  std::vector<int> order;
  client.read_file("a", [&](bool) { order.push_back(1); });
  client.write_file("b", 50000, [&](bool) { order.push_back(2); });
  client.read_file("b", [&](bool) { order.push_back(3); });
  net.sim.run_for(2 * kMinute);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(NfsTest, ZeroByteFile) {
  NfsServer server(net.sim, *stack1);
  server.create_file("empty", 0);
  NfsClient client(net.sim, *stack0, net.vip(1));
  bool ok = false, done = false;
  client.read_file("empty", [&](bool result) {
    ok = result;
    done = true;
  });
  net.sim.run_for(kMinute);
  ASSERT_TRUE(done);
  EXPECT_TRUE(ok);
}

// ----------------------------------------------------------------------- PBS

TEST(Pbs, JobsRunAndComplete) {
  IpopOverlay net(4);
  net.start_all();
  net.sim.run_until(kMinute);
  vtcp::TcpStack head_stack(net.sim, *net.nodes[0]);
  NfsServer nfs(net.sim, head_stack);
  PbsServer pbs(net.sim, head_stack, nfs);

  std::vector<std::unique_ptr<vtcp::TcpStack>> stacks;
  std::vector<std::unique_ptr<CpuExecutor>> cpus;
  std::vector<std::unique_ptr<PbsWorker>> workers;
  for (int i = 1; i <= 2; ++i) {
    stacks.push_back(std::make_unique<vtcp::TcpStack>(
        net.sim, *net.nodes[static_cast<std::size_t>(i)]));
    cpus.push_back(std::make_unique<CpuExecutor>(net.sim, 1.0));
    workers.push_back(std::make_unique<PbsWorker>(
        net.sim, *stacks.back(), *cpus.back(), net.vip(0),
        "w" + std::to_string(i)));
    workers.back()->start();
  }
  net.sim.run_for(30 * kSecond);
  ASSERT_EQ(pbs.registered_workers(), 2u);

  for (std::uint64_t j = 0; j < 6; ++j) {
    pbs.qsub(JobSpec{j, 10.0, 100000, 50000});
  }
  net.sim.run_for(5 * kMinute);
  ASSERT_EQ(pbs.completed().size(), 6u);
  for (const auto& record : pbs.completed()) {
    EXPECT_GT(record.wall_seconds(), 9.9);
    EXPECT_FALSE(record.worker.empty());
  }
  // Two workers, six 10 s jobs: both must have run some.
  int w1 = 0, w2 = 0;
  for (const auto& record : pbs.completed()) {
    (record.worker == "w1" ? w1 : w2)++;
  }
  EXPECT_GT(w1, 0);
  EXPECT_GT(w2, 0);
  EXPECT_GT(pbs.throughput_jobs_per_minute(), 0.0);
}

TEST(Pbs, QueueDrainsFifoWhenSingleWorker) {
  IpopOverlay net(3);
  net.start_all();
  net.sim.run_until(kMinute);
  vtcp::TcpStack head_stack(net.sim, *net.nodes[0]);
  NfsServer nfs(net.sim, head_stack);
  PbsServer pbs(net.sim, head_stack, nfs);

  vtcp::TcpStack wstack(net.sim, *net.nodes[1]);
  CpuExecutor cpu(net.sim, 1.0);
  PbsWorker worker(net.sim, wstack, cpu, net.vip(0), "solo");
  worker.start();
  net.sim.run_for(30 * kSecond);

  for (std::uint64_t j = 0; j < 4; ++j) {
    pbs.qsub(JobSpec{j, 5.0, 10000, 1000});
  }
  net.sim.run_for(3 * kMinute);
  ASSERT_EQ(pbs.completed().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pbs.completed()[i].spec.id, i) << "FIFO order violated";
  }
  // Queue times must be increasing: later jobs waited behind earlier.
  EXPECT_GT(pbs.completed()[3].queue_seconds(),
            pbs.completed()[0].queue_seconds());
}

// ----------------------------------------------------------------------- PVM

TEST(Pvm, RoundSynchronizedMakespan) {
  IpopOverlay net(5);
  net.start_all();
  net.sim.run_until(kMinute);
  vtcp::TcpStack master_stack(net.sim, *net.nodes[0]);

  PvmWorkload workload;
  workload.rounds = 3;
  workload.tasks_per_round = 6;
  workload.task_seconds = 4.0;
  workload.master_seconds = 1.0;
  workload.task_msg_bytes = 5000;
  workload.result_msg_bytes = 5000;
  PvmMaster master(net.sim, master_stack, workload);

  std::vector<std::unique_ptr<vtcp::TcpStack>> stacks;
  std::vector<std::unique_ptr<CpuExecutor>> cpus;
  std::vector<std::unique_ptr<PvmWorker>> workers;
  for (int i = 1; i <= 3; ++i) {
    stacks.push_back(std::make_unique<vtcp::TcpStack>(
        net.sim, *net.nodes[static_cast<std::size_t>(i)]));
    cpus.push_back(std::make_unique<CpuExecutor>(net.sim, 1.0));
    workers.push_back(std::make_unique<PvmWorker>(
        net.sim, *stacks.back(), *cpus.back(), net.vip(0)));
    workers.back()->start();
  }

  double makespan = -1;
  master.run(3, [&](double s) { makespan = s; });
  net.sim.run_for(10 * kMinute);

  ASSERT_GT(makespan, 0.0);
  EXPECT_EQ(master.completed_rounds(), 3);
  EXPECT_EQ(master.tasks_dispatched(), 18u);
  // Lower bound: 3 rounds x (2 waves x 4 s + 1 s master) = 27 s; some
  // communication on top.  Upper bound: sequential would be 75 s.
  EXPECT_GE(makespan, 27.0);
  EXPECT_LT(makespan, 75.0);
}

TEST(Pvm, WaitsForExpectedWorkers) {
  IpopOverlay net(4);
  net.start_all();
  net.sim.run_until(kMinute);
  vtcp::TcpStack master_stack(net.sim, *net.nodes[0]);
  PvmWorkload workload;
  workload.rounds = 1;
  workload.tasks_per_round = 2;
  workload.task_seconds = 1.0;
  PvmMaster master(net.sim, master_stack, workload);

  double makespan = -1;
  master.run(2, [&](double s) { makespan = s; });

  vtcp::TcpStack s1(net.sim, *net.nodes[1]);
  CpuExecutor c1(net.sim, 1.0);
  PvmWorker w1(net.sim, s1, c1, net.vip(0));
  w1.start();
  net.sim.run_for(kMinute);
  EXPECT_LT(makespan, 0.0) << "must not start with 1 of 2 workers";

  vtcp::TcpStack s2(net.sim, *net.nodes[2]);
  CpuExecutor c2(net.sim, 1.0);
  PvmWorker w2(net.sim, s2, c2, net.vip(0));
  w2.start();
  net.sim.run_for(2 * kMinute);
  EXPECT_GT(makespan, 0.0);
}

}  // namespace
}  // namespace wow::mw
