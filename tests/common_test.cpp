#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/ring_id.h"
#include "common/rng.h"
#include "common/stats.h"

namespace wow {
namespace {

TEST(RingId, HexRoundTrip) {
  auto id = RingId::from_hex("0123456789abcdef0123456789abcdef01234567");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->to_hex(), "0123456789abcdef0123456789abcdef01234567");
}

TEST(RingId, ShortHexZeroExtends) {
  auto id = RingId::from_hex("ff");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, RingId{0xff});
}

TEST(RingId, RejectsBadHex) {
  EXPECT_FALSE(RingId::from_hex("").has_value());
  EXPECT_FALSE(RingId::from_hex("xyz").has_value());
  EXPECT_FALSE(
      RingId::from_hex("0123456789abcdef0123456789abcdef012345678").has_value());
}

TEST(RingId, AdditionWrapsModulo2To160) {
  EXPECT_EQ(RingId::max() + RingId{1}, RingId{});
  EXPECT_EQ(RingId{5} + RingId{7}, RingId{12});
}

TEST(RingId, SubtractionWraps) {
  EXPECT_EQ(RingId{} - RingId{1}, RingId::max());
  EXPECT_EQ(RingId{12} - RingId{5}, RingId{7});
}

TEST(RingId, CarriesPropagateAcrossLimbs) {
  RingId low_max{0xffffffffffffffffull};
  RingId one{1};
  RingId sum = low_max + one;
  // 2^64: limb 2 should be 1, lower limbs 0.
  EXPECT_EQ(sum.limbs()[0], 0u);
  EXPECT_EQ(sum.limbs()[1], 0u);
  EXPECT_EQ(sum.limbs()[2], 1u);
}

TEST(RingId, ClockwiseDistance) {
  RingId a{10};
  RingId b{4};
  EXPECT_EQ(a.clockwise_distance(b), RingId::max() - RingId{5});
  EXPECT_EQ(b.clockwise_distance(a), RingId{6});
}

TEST(RingId, RingDistanceIsSymmetricMin) {
  RingId a{10};
  RingId b{4};
  EXPECT_EQ(a.ring_distance(b), RingId{6});
  EXPECT_EQ(b.ring_distance(a), RingId{6});
}

TEST(RingId, InArc) {
  RingId a{10}, b{20};
  EXPECT_TRUE(RingId{15}.in_arc(a, b));
  EXPECT_TRUE(RingId{20}.in_arc(a, b));   // half-open: includes b
  EXPECT_FALSE(RingId{10}.in_arc(a, b));  // excludes a
  EXPECT_FALSE(RingId{25}.in_arc(a, b));
  // Wrapping arc.
  EXPECT_TRUE(RingId{5}.in_arc(b, a));
  EXPECT_TRUE((RingId::max()).in_arc(b, a));
  EXPECT_FALSE(RingId{15}.in_arc(b, a));
}

TEST(RingId, InArcDegenerateWholeRing) {
  RingId a{10};
  EXPECT_TRUE(RingId{999}.in_arc(a, a));
}

TEST(RingId, Shr1HalvesValue) {
  EXPECT_EQ(RingId{8}.shr1(), RingId{4});
  // Cross-limb shift: 2^32 >> 1 = 2^31.
  RingId x{std::uint64_t{1} << 32};
  EXPECT_EQ(x.shr1(), RingId{std::uint64_t{1} << 31});
}

TEST(RingId, OrderingMostSignificantFirst) {
  auto big = RingId::from_hex("8000000000000000000000000000000000000000");
  ASSERT_TRUE(big.has_value());
  EXPECT_LT(RingId{0xffffffffffffffffull}, *big);
}

class RingIdPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingIdPropertyTest, AddSubInverse) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    RingId a = rng.ring_id();
    RingId b = rng.ring_id();
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST_P(RingIdPropertyTest, DistanceTriangleOnRing) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    RingId a = rng.ring_id();
    RingId b = rng.ring_id();
    // cw(a->b) + cw(b->a) == 0 (full ring) unless a == b.
    if (a == b) continue;
    EXPECT_EQ(a.clockwise_distance(b) + b.clockwise_distance(a), RingId{});
  }
}

TEST_P(RingIdPropertyTest, HexRoundTripRandom) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    RingId a = rng.ring_id();
    auto parsed = RingId::from_hex(a.to_hex());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingIdPropertyTest,
                         ::testing::Values(1, 42, 1234, 99999));

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xcdef);
  w.u32(0x12345678);
  w.u64(0xdeadbeefcafebabeull);
  w.i64(-42);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xcdef);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafebabeull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, BigEndianOnWire) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(Bytes, RingIdRoundTrip) {
  Rng rng(3);
  RingId id = rng.ring_id();
  ByteWriter w;
  w.ring_id(id);
  EXPECT_EQ(w.size(), 20u);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.ring_id(), id);
}

TEST(Bytes, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.str("hello");
  Bytes blob{1, 2, 3};
  w.blob(blob);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), blob);
}

TEST(Bytes, UnderflowReturnsNullopt) {
  Bytes data{0x01};
  ByteReader r(data);
  EXPECT_FALSE(r.u32().has_value());
  // And a partially-consumed reader also fails cleanly.
  ByteReader r2(data);
  EXPECT_TRUE(r2.u8().has_value());
  EXPECT_FALSE(r2.u8().has_value());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.u16(100);  // claims 100 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.str().has_value());
}

TEST(Bytes, BlobAtMaxLenPrefixedRoundTrips) {
  Bytes big(ByteWriter::kMaxLenPrefixed, 0xab);
  ByteWriter w;
  w.blob(big);
  EXPECT_FALSE(w.overflowed());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.blob(), big);
}

TEST(Bytes, OversizeBlobIsRejectedNotTruncated) {
  // One byte past the u16 ceiling.  The old behavior cast the size to
  // u16 — writing length 0 but appending all 65536 payload bytes, which
  // desynchronized every field after it.
  Bytes big(ByteWriter::kMaxLenPrefixed + 1, 0xcd);
  ByteWriter w;
  w.u8(7);
  w.blob(big);
  w.u8(9);
  EXPECT_TRUE(w.overflowed());
  // The rejected blob occupies exactly one empty length prefix, so the
  // surrounding fields still parse.
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.blob(), Bytes{});
  EXPECT_EQ(r.u8(), 9);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, OversizeStrIsRejectedNotTruncated) {
  std::string big(ByteWriter::kMaxLenPrefixed + 1, 'x');
  ByteWriter w;
  w.str(big);
  EXPECT_TRUE(w.overflowed());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
}

TEST(Bytes, SharedBytesCopyOnWrite) {
  SharedBytes a{Bytes{1, 2, 3}};
  EXPECT_TRUE(a.unique());
  SharedBytes b = a;  // second reference: in-place mutation now unsafe
  EXPECT_FALSE(a.unique());
  const std::uint8_t* before = b.data();
  b.mutable_data()[0] = 9;  // clones, leaving `a` untouched
  EXPECT_NE(b.data(), before);
  EXPECT_EQ(a.view()[0], 1);
  EXPECT_EQ(b.view()[0], 9);
  // Sole owner mutates in place — no clone.
  EXPECT_TRUE(b.unique());
  const std::uint8_t* stable = b.data();
  b.mutable_data()[1] = 8;
  EXPECT_EQ(b.data(), stable);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stdev(), 2.138, 1e-3);  // sample stdev
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, HistogramBinsAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(3.0);   // bin 1
  h.add(-5.0);  // clamps to bin 0
  h.add(99.0);  // clamps to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, PercentileEdgeCases) {
  // Empty input: every percentile degrades to 0 rather than reading
  // out of bounds.
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
  // Single element: every percentile is that element.
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 100), 42.0);
}

TEST(Stats, HistogramRenderPreservesTotals) {
  Histogram h(0.0, 4.0, 4);
  for (double v : {-1.0, 0.5, 1.5, 2.5, 3.5, 9.0}) h.add(v);
  EXPECT_EQ(h.total(), 6u);  // clamped samples still count
  std::string rows = h.render();
  // One row per bin, each carrying its count; the counts sum to total().
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(rows.begin(), rows.end(), '\n')),
            h.bins());
  std::size_t sum = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.count(b);
  EXPECT_EQ(sum, h.total());
  EXPECT_NE(rows.find("33.3%"), std::string::npos);  // bin 0: 2 of 6
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform(0, 1000000), b.uniform(0, 1000000));
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

}  // namespace
}  // namespace wow
