#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace wow::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30 * kMillisecond, [&] { order.push_back(3); });
  sim.schedule(10 * kMillisecond, [&] { order.push_back(1); });
  sim.schedule(20 * kMillisecond, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30 * kMillisecond);
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(kSecond, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto h = sim.schedule(kSecond, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));  // double-cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelNullHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(TimerHandle{}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule(1 * kSecond, [&] { ++count; });
  sim.schedule(2 * kSecond, [&] { ++count; });
  sim.schedule(3 * kSecond, [&] { ++count; });
  sim.run_until(2 * kSecond);
  EXPECT_EQ(count, 2);  // events at exactly the deadline run
  EXPECT_EQ(sim.now(), 2 * kSecond);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockPastEmptyQueue) {
  Simulator sim;
  sim.run_until(5 * kSecond);
  EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(kSecond, recurse);
  };
  sim.schedule(kSecond, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulator, EventCanCancelAnotherPendingEvent) {
  Simulator sim;
  bool victim_fired = false;
  auto victim = sim.schedule(2 * kSecond, [&] { victim_fired = true; });
  sim.schedule(1 * kSecond, [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.run_until(kSecond);
  bool fired = false;
  sim.schedule(-5 * kSecond, [&] { fired = true; });
  sim.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), kSecond);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule(0, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutedEventsCounts) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(i * kSecond, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  auto h = sim.schedule(kSecond, [] {});
  sim.schedule(2 * kSecond, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending_events(), 1u);
}

}  // namespace
}  // namespace wow::sim
