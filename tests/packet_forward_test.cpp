// Equivalence tests for the zero-copy forwarding path: a RoutedPacket
// parsed from the wire and re-emitted through wire() — with the
// in-flight-mutable header fields rewritten in place — must produce
// byte-for-byte the frame a from-scratch serialize() of the same
// logical packet would.  Any divergence would break cross-build
// determinism (mixed old/new nodes would disagree on bytes) and the
// fixed-seed trace fingerprints.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "p2p/packet.h"

namespace wow::p2p {
namespace {

/// Serialize `p`'s logical contents from scratch through a fresh
/// owned-payload packet — the reference the zero-copy path must match.
Bytes scratch_serialize(const RoutedPacket& p) {
  RoutedPacket fresh;
  fresh.src = p.src;
  fresh.dst = p.dst;
  fresh.via = p.via;
  fresh.ttl = p.ttl;
  fresh.hops = p.hops;
  fresh.mode = p.mode;
  fresh.bounced = p.bounced;
  fresh.type = p.type;
  fresh.trace_id = p.trace_id;
  fresh.set_payload(Bytes(p.payload().begin(), p.payload().end()));
  return fresh.serialize();
}

RoutedPacket origin_packet(DeliveryMode mode, bool with_via) {
  Rng rng(42);
  RoutedPacket p;
  p.src = rng.ring_id();
  p.dst = rng.ring_id();
  if (with_via) p.via = rng.ring_id();
  p.ttl = 16;
  p.mode = mode;
  p.type = RoutedType::kCtmReply;
  p.trace_id = 0x1122334455667788ull;
  Bytes payload(200);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 7);
  }
  p.set_payload(std::move(payload));
  return p;
}

class ForwardEquivalence
    : public ::testing::TestWithParam<std::pair<DeliveryMode, bool>> {};

TEST_P(ForwardEquivalence, WireMatchesScratchSerializeAtEveryHop) {
  auto [mode, with_via] = GetParam();
  RoutedPacket origin = origin_packet(mode, with_via);
  Bytes frame = origin.serialize();
  ASSERT_FALSE(frame.empty());

  for (int hop = 0; hop < 6; ++hop) {
    auto p = RoutedPacket::parse(SharedBytes{std::move(frame)});
    ASSERT_TRUE(p.has_value()) << "hop " << hop;
    // The mutations a forwarding node applies in flight (Node::route /
    // Node::forward_to): consume the via once "we" are the agent, tag
    // the gap bounce, spend ttl, count the hop.
    if (hop == 2) p->via = Address{};   // agent reached: via consumed
    if (hop == 3) p->bounced = true;    // handed across the ring gap
    --p->ttl;
    ++p->hops;

    Bytes expected = scratch_serialize(*p);
    SharedBytes rewired = p->wire();
    ASSERT_EQ(rewired.size(), expected.size()) << "hop " << hop;
    EXPECT_EQ(Bytes(rewired.view().begin(), rewired.view().end()), expected)
        << "hop " << hop;

    // Next hop receives exactly what this hop sent.
    frame = rewired.to_bytes();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ForwardEquivalence,
    ::testing::Values(std::make_pair(DeliveryMode::kExact, false),
                      std::make_pair(DeliveryMode::kExact, true),
                      std::make_pair(DeliveryMode::kNearest, false),
                      std::make_pair(DeliveryMode::kNearest, true)));

TEST(ForwardPath, ParsedPayloadIsViewIntoFrame) {
  RoutedPacket origin = origin_packet(DeliveryMode::kExact, false);
  SharedBytes frame{origin.serialize()};
  const std::uint8_t* base = frame.data();
  auto p = RoutedPacket::parse(std::move(frame));
  ASSERT_TRUE(p.has_value());
  // Zero-copy: the payload view aliases the arrival buffer.
  EXPECT_EQ(p->payload().data(), base + RoutedPacket::kHeaderBytes);
  EXPECT_EQ(p->payload().size(),
            origin.payload().size());
}

TEST(ForwardPath, UniqueFrameIsRewrittenInPlace) {
  RoutedPacket origin = origin_packet(DeliveryMode::kExact, false);
  SharedBytes frame{origin.serialize()};
  const std::uint8_t* base = frame.data();
  auto p = RoutedPacket::parse(std::move(frame));
  ASSERT_TRUE(p.has_value());
  --p->ttl;
  ++p->hops;
  SharedBytes out = p->wire();
  // Sole reference: same buffer, mutated in place (the whole point).
  EXPECT_EQ(out.data(), base);
}

TEST(ForwardPath, SharedFrameCopiesOnWriteLeavingOriginalIntact) {
  RoutedPacket origin = origin_packet(DeliveryMode::kNearest, false);
  SharedBytes frame{origin.serialize()};
  SharedBytes held = frame;  // e.g. a deferred delivery still queued
  auto p = RoutedPacket::parse(std::move(frame));
  ASSERT_TRUE(p.has_value());
  p->bounced = true;
  --p->ttl;
  SharedBytes out = p->wire();
  EXPECT_NE(out.data(), held.data());
  // The held reference still carries the original header bytes.
  EXPECT_EQ(held.view()[55], 16);  // ttl
  EXPECT_EQ(held.view()[57], 0);   // bounced
  EXPECT_EQ(out.view()[55], 15);
  EXPECT_EQ(out.view()[57], 1);
}

TEST(ForwardPath, OversizePayloadFailsLoudlyNotTruncated) {
  RoutedPacket p;
  p.set_payload(Bytes(RoutedPacket::kMaxPayloadBytes + 1, 0xee));
  EXPECT_TRUE(p.serialize().empty());
  EXPECT_TRUE(p.wire().empty());
  // At the ceiling it still works.
  RoutedPacket ok;
  ok.set_payload(Bytes(RoutedPacket::kMaxPayloadBytes, 0xee));
  Bytes frame = ok.serialize();
  EXPECT_EQ(frame.size(),
            RoutedPacket::kHeaderBytes + RoutedPacket::kMaxPayloadBytes);
  auto parsed = RoutedPacket::parse(BytesView(frame));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload().size(), RoutedPacket::kMaxPayloadBytes);
}

TEST(ForwardPath, LocallyBuiltPacketCachesItsFrame) {
  RoutedPacket p = origin_packet(DeliveryMode::kExact, false);
  SharedBytes first = p.wire();
  ASSERT_FALSE(first.empty());
  // A second send reuses the cached frame rather than re-serializing —
  // and header edits between sends still land in it.
  --p.ttl;
  SharedBytes second = p.wire();
  EXPECT_EQ(second.view()[55], p.ttl);
  EXPECT_EQ(Bytes(second.view().begin(), second.view().end()),
            scratch_serialize(p));
}

}  // namespace
}  // namespace wow::p2p
