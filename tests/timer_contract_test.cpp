// The TimerService/Clock contract, run against every backend: the
// discrete-event Simulator, the in-process LoopbackNet, and the
// real-clock RealtimeEventLoop.  Any future backend joins by adding a
// driver; the protocol stack is only portable because all three pass
// the same suite (DESIGN §17).
//
// The realtime backend really sleeps, so delays here are a few
// milliseconds — long enough to order reliably, short enough that the
// suite stays fast.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "sim/timer_service.h"
#include "transport/loopback.h"
#include "transport/realtime.h"

namespace wow {
namespace {

/// Adapts one backend to the two operations the contract needs: the
/// TimerService itself and "advance until everything due has fired".
struct Backend {
  virtual ~Backend() = default;
  [[nodiscard]] virtual sim::TimerService& timers() = 0;
  /// Run until at least `duration` of backend time has passed.
  virtual void drive(SimDuration duration) = 0;
};

struct SimulatorBackend final : Backend {
  sim::Simulator sim;
  sim::TimerService& timers() override { return sim; }
  void drive(SimDuration d) override { sim.run_until(sim.now() + d); }
};

struct LoopbackBackend final : Backend {
  transport::LoopbackNet net;
  sim::TimerService& timers() override { return net; }
  void drive(SimDuration d) override { net.run_until(net.now() + d); }
};

struct RealtimeBackend final : Backend {
  transport::RealtimeEventLoop loop;
  sim::TimerService& timers() override { return loop; }
  void drive(SimDuration d) override {
    // Generous margin: CI schedulers can stall the process, and the
    // contract is about ordering, not wall-clock precision.
    loop.run_until(loop.now() + d + 50 * kMillisecond);
  }
};

using BackendFactory = std::unique_ptr<Backend> (*)();

class TimerContractTest : public ::testing::TestWithParam<BackendFactory> {
 protected:
  void SetUp() override { backend_ = GetParam()(); }
  sim::TimerService& timers() { return backend_->timers(); }
  void drive(SimDuration d) { backend_->drive(d); }
  std::unique_ptr<Backend> backend_;
};

TEST_P(TimerContractTest, FiresInDeadlineOrder) {
  std::vector<int> order;
  timers().schedule(9 * kMillisecond, [&] { order.push_back(3); });
  timers().schedule(3 * kMillisecond, [&] { order.push_back(1); });
  timers().schedule(6 * kMillisecond, [&] { order.push_back(2); });
  drive(20 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(TimerContractTest, EqualDeadlinesFireFifo) {
  // Scheduled back-to-back with the same delay from the same context:
  // every backend guarantees schedule-order execution.  (The realtime
  // loop freezes now() per dispatch batch precisely to keep this
  // producible; schedule these from inside a timer so they share one
  // batch.)
  std::vector<int> order;
  timers().schedule(0, [&] {
    for (int i = 0; i < 5; ++i) {
      timers().schedule(4 * kMillisecond, [&order, i] {
        order.push_back(i);
      });
    }
  });
  drive(20 * kMillisecond);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(TimerContractTest, ZeroDelayFiresWithoutAdvancingPastIt) {
  bool fired = false;
  timers().schedule(0, [&] { fired = true; });
  drive(5 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST_P(TimerContractTest, NegativeDelayClampsToZero) {
  bool fired = false;
  timers().schedule(-5 * kSecond, [&] { fired = true; });
  drive(5 * kMillisecond);
  EXPECT_TRUE(fired);
}

TEST_P(TimerContractTest, HandleIsValidAndNonNull) {
  auto handle = timers().schedule(kMillisecond, [] {});
  EXPECT_TRUE(handle.valid());
  EXPECT_NE(handle.id, 0u);
  drive(10 * kMillisecond);
}

TEST_P(TimerContractTest, CancelPendingPreventsFiring) {
  bool fired = false;
  auto handle = timers().schedule(5 * kMillisecond, [&] { fired = true; });
  EXPECT_TRUE(timers().cancel(handle));
  drive(20 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST_P(TimerContractTest, CancelFiredHandleIsNoOp) {
  bool fired = false;
  auto handle = timers().schedule(kMillisecond, [&] { fired = true; });
  drive(10 * kMillisecond);
  ASSERT_TRUE(fired);
  EXPECT_FALSE(timers().cancel(handle));
}

TEST_P(TimerContractTest, CancelNullAndBogusHandlesAreNoOps) {
  EXPECT_FALSE(timers().cancel(sim::TimerHandle{}));
  EXPECT_FALSE(timers().cancel(sim::TimerHandle{0xdeadbeef}));
}

TEST_P(TimerContractTest, CancelIsIdempotent) {
  bool fired = false;
  auto handle = timers().schedule(5 * kMillisecond, [&] { fired = true; });
  EXPECT_TRUE(timers().cancel(handle));
  EXPECT_FALSE(timers().cancel(handle));  // second cancel: no-op
  drive(20 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST_P(TimerContractTest, InBatchCancelOfLaterSibling) {
  // canceller scheduled BEFORE victim at the same deadline: canceller
  // runs first (FIFO) and the victim must not fire.
  bool victim_fired = false;
  sim::TimerHandle victim{};
  timers().schedule(0, [&] {
    timers().schedule(4 * kMillisecond, [&] { timers().cancel(victim); });
    victim =
        timers().schedule(4 * kMillisecond, [&] { victim_fired = true; });
  });
  drive(20 * kMillisecond);
  EXPECT_FALSE(victim_fired);
}

TEST_P(TimerContractTest, RearmFromCallback) {
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) timers().schedule(2 * kMillisecond, tick);
  };
  timers().schedule(2 * kMillisecond, tick);
  drive(30 * kMillisecond);
  EXPECT_EQ(fires, 3);
}

TEST_P(TimerContractTest, NowIsMonotonicAndReachesDeadlines) {
  SimTime start = timers().now();
  SimTime at_fire = -1;
  SimTime scheduled_at = timers().now();
  timers().schedule(5 * kMillisecond, [&] { at_fire = timers().now(); });
  drive(20 * kMillisecond);
  ASSERT_GE(at_fire, 0);
  // The callback never observes a clock earlier than its own deadline.
  EXPECT_GE(at_fire, scheduled_at + 5 * kMillisecond);
  EXPECT_GE(timers().now(), start);
}

TEST_P(TimerContractTest, ZeroDelayChainRunsToCompletion) {
  // A zero-delay event scheduling another zero-delay event must make
  // progress (the whole chain drains) on every backend.
  int depth = 0;
  std::function<void()> step = [&] {
    if (++depth < 10) timers().schedule(0, step);
  };
  timers().schedule(0, step);
  drive(10 * kMillisecond);
  EXPECT_EQ(depth, 10);
}

std::unique_ptr<Backend> make_simulator() {
  return std::make_unique<SimulatorBackend>();
}
std::unique_ptr<Backend> make_loopback() {
  return std::make_unique<LoopbackBackend>();
}
std::unique_ptr<Backend> make_realtime() {
  return std::make_unique<RealtimeBackend>();
}

std::string backend_name(
    const ::testing::TestParamInfo<BackendFactory>& info) {
  if (info.param == make_simulator) return "Simulator";
  if (info.param == make_loopback) return "Loopback";
  return "Realtime";
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TimerContractTest,
                         ::testing::Values(&make_simulator, &make_loopback,
                                           &make_realtime),
                         backend_name);

}  // namespace
}  // namespace wow
