#include <gtest/gtest.h>

#include <algorithm>

#include "ipop/icmp_service.h"
#include "test_util.h"
#include "vtcp/tcp.h"

namespace wow {
namespace {

using testing::IpopOverlay;
using testing::PublicOverlay;

// ---------------------------------------------------------------- churn

TEST(Churn, RingSurvivesRollingRestarts) {
  PublicOverlay net(12, /*seed=*/61);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  ASSERT_EQ(net.routable_count(), 12);

  // Restart one node at a time, abruptly, letting keepalives clean up.
  for (std::size_t i = 1; i <= 4; ++i) {
    net.nodes[i]->stop();
    net.sim.run_for(kMinute);
    net.nodes[i]->restart();
    net.sim.run_for(2 * kMinute);
  }
  EXPECT_EQ(net.routable_count(), 12);

  // Data still routes between every pair.
  int received = 0;
  for (auto& n : net.nodes) {
    n->set_data_handler([&received](const p2p::Address&, BytesView) {
      ++received;
    });
  }
  for (auto& a : net.nodes) {
    for (auto& b : net.nodes) {
      if (a != b) a->send_data(b->address(), Bytes{1});
    }
  }
  net.sim.run_for(30 * kSecond);
  EXPECT_EQ(received, 12 * 11);
}

TEST(Churn, SimultaneousDepartures) {
  PublicOverlay net(14, /*seed=*/67);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  ASSERT_EQ(net.routable_count(), 14);

  // Three nodes vanish at once (power failure, not graceful).
  net.nodes[3]->stop();
  net.nodes[7]->stop();
  net.nodes[11]->stop();
  net.sim.run_for(5 * kMinute);

  // Survivors re-stitch the ring around the holes.
  std::vector<p2p::Address> alive;
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    if (i != 3 && i != 7 && i != 11) alive.push_back(net.nodes[i]->address());
  }
  std::sort(alive.begin(), alive.end());
  int stitched = 0;
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    if (i == 3 || i == 7 || i == 11) continue;
    auto& node = *net.nodes[i];
    auto it = std::find(alive.begin(), alive.end(), node.address());
    auto idx = static_cast<std::size_t>(it - alive.begin());
    const p2p::Address& successor = alive[(idx + 1) % alive.size()];
    if (node.connections().contains(successor)) ++stitched;
  }
  EXPECT_GE(stitched, 10) << "ring must close around departed nodes";
}

// ------------------------------------------------- NAT renumbering (§V-E)

TEST(NatRenumbering, HomeNodeSurvivesTranslationChange) {
  // The paper observed the broadband home node's NAT translations
  // change; IPOP "dealt with these translation changes autonomously by
  // detecting broken links and re-establishing them".  Model: flush the
  // NAT's mapping table; old public endpoints die; the node's outbound
  // traffic allocates fresh mappings, keepalives kill stale links, and
  // re-linking restores connectivity.
  sim::Simulator sim(71);
  net::Network network(sim);
  auto site = network.add_site("s");

  std::vector<std::unique_ptr<p2p::Node>> routers;
  std::vector<transport::Uri> bootstrap;
  for (int i = 0; i < 6; ++i) {
    auto& host = network.add_host(
        net::Ipv4Addr(128, 1, 0, static_cast<std::uint8_t>(i + 1)),
        net::Network::kInternet, site, net::Host::Config{"r"});
    p2p::NodeConfig cfg;
    cfg.port = 17000;
    if (i > 0) cfg.bootstrap = bootstrap;
    routers.push_back(std::make_unique<p2p::Node>(
        p2p::NodeDeps::sim(sim, network, host), cfg));
    bootstrap.push_back(transport::Uri{
        transport::TransportKind::kUdp, net::Endpoint{host.ip(), 17000}});
    sim.schedule(static_cast<SimDuration>(i) * 3 * kSecond,
                 [node = routers.back().get()] { node->start(); });
  }
  sim.run_for(kMinute);

  net::DomainId home = network.add_nat_domain(
      "home-nat", net::Network::kInternet, site, net::Ipv4Addr(66, 1, 1, 1),
      net::NatBox::Config{});
  auto& home_host = network.add_host(net::Ipv4Addr(192, 168, 1, 5), home,
                                     site, net::Host::Config{"home"});
  ipop::IpopNode::Config cfg;
  cfg.vip = net::Ipv4Addr(172, 16, 1, 34);
  cfg.p2p.bootstrap = bootstrap;
  ipop::IpopNode node(p2p::NodeDeps::sim(sim, network, home_host), cfg);
  node.start();
  sim.run_for(2 * kMinute);
  ASSERT_TRUE(node.p2p().routable());

  // The ISP renumbers: every existing translation is forgotten.
  network.nat_of_domain(home)->flush_mappings();

  // Stale inbound paths die; keepalives + relinking must restore full
  // routability without any restart of the node.
  sim.run_for(5 * kMinute);
  EXPECT_TRUE(node.p2p().routable());

  // And traffic flows again end-to-end: a router can route data to it.
  int got = 0;
  node.p2p().set_data_handler(
      [&got](const p2p::Address&, BytesView) { ++got; });
  // Stale forwarding state at individual routers may take another
  // keepalive cycle to clear; a few probes must get through.
  for (int i = 0; i < 5; ++i) {
    routers[2]->send_data(node.p2p().address(), Bytes{0x42});
    sim.run_for(30 * kSecond);
  }
  EXPECT_GE(got, 1);
}

// --------------------------------------------- TCP under adverse networks

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, TransferCompletesUnderLoss) {
  IpopOverlay net(3, /*seed=*/73);
  net.start_all();
  net.sim.run_until(kMinute);
  net.network.set_same_site(
      net::LinkModel{1 * kMillisecond, 100 * kMicrosecond, GetParam()});

  vtcp::TcpStack stack0(net.sim, *net.nodes[0]);
  vtcp::TcpStack stack1(net.sim, *net.nodes[1]);
  constexpr std::size_t kTotal = 128 * 1024;
  std::size_t got = 0;
  stack1.listen(80, [&](std::shared_ptr<vtcp::TcpSocket> s) {
    s->set_data_handler([&](const Bytes& d) { got += d.size(); });
  });
  auto client = stack0.connect(net.vip(1), 80);
  std::size_t queued = 0;
  auto feed = [&] {
    while (queued < kTotal && client->send_buffer_room() > 0) {
      std::size_t n = std::min<std::size_t>(client->send_buffer_room(),
                                            std::min<std::size_t>(
                                                kTotal - queued, 8192));
      client->send(Bytes(n, 0x3c));
      queued += n;
    }
  };
  client->set_established_handler(feed);
  client->set_writable_handler(feed);
  net.sim.run_for(30 * kMinute);
  EXPECT_EQ(got, kTotal) << "loss rate " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.10));

// ------------------------------------------------ NAT-type linking matrix

struct NatCase {
  net::NatType type;
  bool hairpin;
};

class NatTraversalMatrix : public ::testing::TestWithParam<NatCase> {};

TEST_P(NatTraversalMatrix, TwoNatedPeersEventuallyLink) {
  // Two IPOP nodes behind separate NATs of the parameterized type must
  // form a direct shortcut under traffic (symmetric NATs are the known
  // exception: hole punching needs stable per-destination ports, so
  // only multi-hop connectivity is required there).
  NatCase param = GetParam();
  sim::Simulator sim(79);
  net::Network network(sim);
  auto site = network.add_site("s");

  std::vector<std::unique_ptr<p2p::Node>> routers;
  std::vector<transport::Uri> bootstrap;
  for (int i = 0; i < 6; ++i) {
    auto& host = network.add_host(
        net::Ipv4Addr(128, 1, 0, static_cast<std::uint8_t>(i + 1)),
        net::Network::kInternet, site, net::Host::Config{"r"});
    p2p::NodeConfig cfg;
    cfg.port = 17000;
    if (i > 0) cfg.bootstrap = bootstrap;
    routers.push_back(std::make_unique<p2p::Node>(
        p2p::NodeDeps::sim(sim, network, host), cfg));
    bootstrap.push_back(transport::Uri{
        transport::TransportKind::kUdp, net::Endpoint{host.ip(), 17000}});
    routers.back()->start();
  }

  auto make_node = [&](std::uint8_t n, net::Ipv4Addr vip) {
    net::NatBox::Config nat;
    nat.type = param.type;
    nat.hairpin = param.hairpin;
    auto domain = network.add_nat_domain(
        "nat" + std::to_string(n), net::Network::kInternet, site,
        net::Ipv4Addr(200, 0, 0, n), nat);
    auto& host = network.add_host(net::Ipv4Addr(192, 168, n, 5), domain,
                                  site, net::Host::Config{"vm"});
    ipop::IpopNode::Config cfg;
    cfg.vip = vip;
    cfg.p2p.bootstrap = bootstrap;
    cfg.p2p.shortcut.threshold = 5.0;
    return std::make_unique<ipop::IpopNode>(
          p2p::NodeDeps::sim(sim, network, host), cfg);
  };
  auto a = make_node(1, net::Ipv4Addr(172, 16, 1, 2));
  auto b = make_node(2, net::Ipv4Addr(172, 16, 1, 3));
  a->start();
  b->start();
  sim.run_for(kMinute);
  ASSERT_TRUE(a->p2p().routable());
  ASSERT_TRUE(b->p2p().routable());

  ipop::IcmpService icmp_a(*a);
  ipop::IcmpService icmp_b(*b);
  int replies = 0;
  icmp_a.set_reply_handler([&](net::Ipv4Addr, std::uint16_t, std::uint16_t,
                               SimDuration) { ++replies; });
  for (int s = 1; s <= 240; ++s) {
    icmp_a.ping(b->vip(), 1, static_cast<std::uint16_t>(s));
    sim.run_for(kSecond);
  }
  // Connectivity always holds (multi-hop via public routers).
  EXPECT_GT(replies, 200);
  if (param.type != net::NatType::kSymmetric) {
    EXPECT_TRUE(a->p2p().has_direct(b->p2p().address()))
        << "hole punching must succeed for " << to_string(param.type);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NatTypes, NatTraversalMatrix,
    ::testing::Values(NatCase{net::NatType::kFullCone, false},
                      NatCase{net::NatType::kRestrictedCone, false},
                      NatCase{net::NatType::kPortRestricted, false},
                      NatCase{net::NatType::kPortRestricted, true},
                      NatCase{net::NatType::kSymmetric, false}));

// ------------------------------------------------------- ring-size sweep

class RingSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSizeSweep, ConvergesAndRoutes) {
  PublicOverlay net(GetParam(), /*seed=*/83);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  // routable() demands near links on BOTH ring sides; in rings of 2-3
  // nodes the peers can land on one side of the distance metric, so the
  // strict assertion starts at 5 nodes.  Data delivery is asserted for
  // every size.
  if (GetParam() >= 5) {
    EXPECT_EQ(net.routable_count(), GetParam());
  }

  // Spot-check routing across the ring.
  int received = 0;
  int senders = std::min(GetParam() - 1, 5);
  net.nodes.back()->set_data_handler(
      [&received](const p2p::Address&, BytesView) { ++received; });
  for (int i = 0; i < senders; ++i) {
    net.nodes[static_cast<std::size_t>(i)]->send_data(
        net.nodes.back()->address(), Bytes{9});
  }
  net.sim.run_for(10 * kSecond);
  EXPECT_EQ(received, senders);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSizeSweep,
                         ::testing::Values(2, 3, 5, 20, 50));

}  // namespace
}  // namespace wow
