// The layered protocol-service stack (PR 5): the dispatch registries,
// the protocol services exercised in isolation behind their hooks, and
// the pluggable Edge transport — a node pair running over the loopback
// backend with no simulator anywhere in sight.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "p2p/ctm_overlord.h"
#include "p2p/dispatch.h"
#include "p2p/keepalive.h"
#include "p2p/node.h"
#include "test_util.h"
#include "transport/loopback.h"

namespace wow {
namespace {

// --- dispatch layer -----------------------------------------------------

TEST(HandlerRegistry, RejectsOutOfRangeDuplicateAndNull) {
  p2p::HandlerRegistry<int> reg(4);
  int total = 0;
  EXPECT_TRUE(reg.add(1, [&](int v) { total += v; }));
  EXPECT_FALSE(reg.add(1, [](int) {}));  // duplicate: wiring bug, refused
  EXPECT_FALSE(reg.add(4, [](int) {}));  // out of range
  EXPECT_FALSE(reg.add(2, nullptr));     // null handler
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains(1));
  EXPECT_FALSE(reg.contains(2));

  EXPECT_TRUE(reg.dispatch(1, 5));
  EXPECT_EQ(total, 5);
}

TEST(HandlerRegistry, UnregisteredKindReportsFalseWithoutCrashing) {
  p2p::HandlerRegistry<int> reg(4);
  EXPECT_FALSE(reg.dispatch(2, 1));    // in range, never registered
  EXPECT_FALSE(reg.dispatch(200, 1));  // far out of range

  EXPECT_TRUE(reg.add(2, [](int) {}));
  EXPECT_TRUE(reg.dispatch(2, 1));
  EXPECT_TRUE(reg.remove(2));
  EXPECT_FALSE(reg.remove(2));
  EXPECT_FALSE(reg.dispatch(2, 1));
  EXPECT_EQ(reg.size(), 0u);
}

// An unknown frame kind arriving over the wire is counted and dropped;
// the node keeps running (the announce table never crashes on garbage).
TEST(Dispatch, UnknownFrameKindIsCountedAndDropped) {
  testing::PublicOverlay net(2);
  net.start_all();
  net.sim.run_for(30 * kSecond);
  ASSERT_TRUE(net.nodes[1]->has_direct(net.nodes[0]->address()));

  std::uint64_t before = net.nodes[0]->stats().parse_rejects;
  net.nodes[1]->edges().send_to(net::Endpoint{net.hosts[0]->ip(), 17000},
                                Bytes{0x7e, 1, 2, 3});
  net.sim.run_for(kSecond);
  EXPECT_EQ(net.nodes[0]->stats().parse_rejects, before + 1);
  EXPECT_TRUE(net.nodes[0]->running());

  // Still a functioning overlay after the garbage frame.
  net.sim.run_for(kMinute);
  EXPECT_TRUE(net.nodes[0]->has_direct(net.nodes[1]->address()));
}

// --- KeepaliveManager in isolation --------------------------------------

// The keepalive service against a bare connection table and the
// loopback clock: no Node, no network.  The hooks record what the
// service asked its owner to do.
struct KeepaliveHarness {
  KeepaliveHarness() {
    config.ping_interval = 2 * kSecond;
    km = std::make_unique<p2p::KeepaliveManager>(
        net, tracer, logger, config, table, stats, trace_node, log_component,
        p2p::KeepaliveManager::Hooks{
            [this](const p2p::Connection&, const p2p::LinkFrame& frame) {
              sent.push_back(frame);
            },
            [this](const p2p::Address& peer, p2p::DisconnectCause cause) {
              dropped.emplace_back(peer, cause);
              // What Node::drop_connection would do with the table.
              table.remove(peer);
              km->erase_ping_state(peer);
            },
        });
  }

  void add_peer(std::uint64_t addr) {
    p2p::Connection c;
    c.addr = p2p::Address{addr};
    c.type = p2p::ConnectionType::kStructuredNear;
    c.remote = net::Endpoint{net::Ipv4Addr(10, 0, 0, 2), 17000};
    table.add(std::move(c));
  }

  transport::LoopbackNet net;
  Tracer tracer;
  Logger logger;
  p2p::NodeConfig config;
  p2p::ConnectionTable table{p2p::Address{100}};
  p2p::NodeStats stats;
  std::string trace_node = "n";
  std::string log_component = "test";
  std::vector<p2p::LinkFrame> sent;
  std::vector<std::pair<p2p::Address, p2p::DisconnectCause>> dropped;
  std::unique_ptr<p2p::KeepaliveManager> km;
};

TEST(KeepaliveIsolation, PingsIdleConnectionAndPongFeedsEstimator) {
  KeepaliveHarness h;
  h.add_peer(200);
  h.km->start(kSecond);

  // Sweeps at t=1s (not yet idle) and t=2s (idle == ping_interval):
  // exactly one probe by t=2.5s.
  h.net.run_for(2 * kSecond + 500 * kMillisecond);
  ASSERT_EQ(h.sent.size(), 1u);
  EXPECT_EQ(h.sent[0].type, p2p::LinkType::kPing);
  EXPECT_EQ(h.sent[0].sender, p2p::Address{100});
  EXPECT_EQ(h.stats.pings_sent, 1u);
  EXPECT_EQ(h.km->ping_state_count(), 1u);

  // The pong answers a sole un-retransmitted probe (Karn-clean), sent
  // at t=2s and answered at t=2.5s: a 500 ms sample closes the episode
  // and feeds both the connection and durable estimators.
  p2p::LinkFrame pong;
  pong.type = p2p::LinkType::kPong;
  pong.sender = p2p::Address{200};
  pong.con_type = h.sent[0].con_type;
  pong.token = h.sent[0].token;
  h.km->on_pong(pong);

  EXPECT_EQ(h.km->ping_state_count(), 0u);
  EXPECT_EQ(h.stats.rtt_samples, 1u);
  EXPECT_EQ(h.km->srtt_of(p2p::Address{200}), 500 * kMillisecond);
  EXPECT_EQ(h.table.find(p2p::Address{200})->srtt, 500 * kMillisecond);
  EXPECT_EQ(h.dropped.size(), 0u);
}

TEST(KeepaliveIsolation, UnansweredProbeBudgetDropsConnection) {
  KeepaliveHarness h;
  h.add_peer(200);
  h.km->start(kSecond);

  h.net.run_for(10 * kSecond);
  ASSERT_EQ(h.dropped.size(), 1u);
  EXPECT_EQ(h.dropped[0].first, p2p::Address{200});
  EXPECT_EQ(h.dropped[0].second, p2p::DisconnectCause::kKeepaliveTimeout);
  EXPECT_EQ(h.stats.pings_sent,
            static_cast<std::uint64_t>(h.config.ping_retries));
  // The episode died with the connection: no leak.
  EXPECT_EQ(h.km->ping_state_count(), 0u);
  EXPECT_TRUE(h.table.empty());
}

TEST(KeepaliveIsolation, RepeatedFlapsQuarantineThenLapse) {
  KeepaliveHarness h;
  p2p::Address peer{300};
  EXPECT_FALSE(h.km->is_quarantined(peer));

  // flap_threshold short-lived losses inside one window begin a
  // quarantine episode at the base duration.
  for (int i = 0; i < h.config.flap_threshold; ++i) {
    h.km->note_flap(peer, kSecond);
  }
  EXPECT_TRUE(h.km->is_quarantined(peer));
  EXPECT_EQ(h.km->quarantine_until(peer), h.net.now() + h.config.quarantine_base);
  EXPECT_EQ(h.stats.quarantines, 1u);

  // The episode lapses once the clock passes quarantine_until.
  h.net.run_for(h.config.quarantine_base + kSecond);
  EXPECT_FALSE(h.km->is_quarantined(peer));
}

// --- CtmOverlord in isolation -------------------------------------------

// The CTM service against a bare table: hooks capture the packets it
// routes and the link handshakes it requests.
struct CtmHarness {
  CtmHarness() {
    ctm = std::make_unique<p2p::CtmOverlord>(
        net, rng, tracer, config, table, stats, trace_node,
        p2p::CtmOverlord::Hooks{
            [] { return true; },   // running
            [] { return false; },  // routable
            [this](p2p::RoutedPacket packet) {
              routed.push_back(std::move(packet));
            },
            [this](const p2p::Connection&, p2p::RoutedPacket packet) {
              forwarded.push_back(std::move(packet));
            },
            [this] { return std::vector<transport::Uri>{uri}; },
            [this](const p2p::Address& peer, p2p::ConnectionType,
                   const std::vector<transport::Uri>&) {
              links.push_back(peer);
            },
            [](const p2p::Address&) { return false; },  // is_quarantined
            [] {},                                      // update_routable
            [] {},                                      // count_parse_reject
        });
  }

  void add_peer(std::uint64_t addr) {
    p2p::Connection c;
    c.addr = p2p::Address{addr};
    c.type = p2p::ConnectionType::kStructuredNear;
    c.remote = net::Endpoint{net::Ipv4Addr(10, 0, 0, 2), 17000};
    table.add(std::move(c));
  }

  transport::LoopbackNet net;
  Rng rng{7};
  Tracer tracer;
  p2p::NodeConfig config;
  p2p::ConnectionTable table{p2p::Address{100}};
  p2p::NodeStats stats;
  std::string trace_node = "n";
  transport::Uri uri{transport::TransportKind::kUdp,
                     net::Endpoint{net::Ipv4Addr(10, 0, 0, 1), 17000}};
  std::vector<p2p::RoutedPacket> routed;
  std::vector<p2p::RoutedPacket> forwarded;
  std::vector<p2p::Address> links;
  std::unique_ptr<p2p::CtmOverlord> ctm;
};

TEST(CtmIsolation, InitiateEmitsOneNearestModeRequest) {
  CtmHarness h;

  // No connections: a CTM has no path out, so initiate is a no-op.
  h.ctm->initiate(p2p::Address{500}, p2p::ConnectionType::kShortcut);
  EXPECT_EQ(h.routed.size(), 0u);
  EXPECT_EQ(h.ctm->pending_count(), 0u);

  h.add_peer(200);
  h.ctm->initiate(p2p::Address{500}, p2p::ConnectionType::kShortcut);
  ASSERT_EQ(h.routed.size(), 1u);
  EXPECT_EQ(h.routed[0].type, p2p::RoutedType::kCtmRequest);
  EXPECT_EQ(h.routed[0].src, p2p::Address{100});
  EXPECT_EQ(h.routed[0].dst, p2p::Address{500});
  EXPECT_EQ(h.routed[0].mode, p2p::DeliveryMode::kNearest);
  EXPECT_EQ(h.ctm->pending_count(), 1u);
  EXPECT_EQ(h.stats.ctm_sent, 1u);
}

TEST(CtmIsolation, SweepRetriesThenExpiresUnansweredRequests) {
  CtmHarness h;
  h.add_peer(200);
  h.ctm->initiate(p2p::Address{500}, p2p::ConnectionType::kShortcut);
  ASSERT_EQ(h.ctm->pending_count(), 1u);

  // Each step advances past any possible timeout (ctm_rto_max is the
  // ceiling): the retry budget drains, then the request expires.
  for (int i = 0; i < h.config.ctm_max_retries + 1; ++i) {
    h.net.run_for(h.config.ctm_rto_max + kSecond);
    h.ctm->sweep();
  }
  EXPECT_EQ(h.stats.ctm_retries,
            static_cast<std::uint64_t>(h.config.ctm_max_retries));
  EXPECT_EQ(h.stats.ctm_timeouts, 1u);
  EXPECT_EQ(h.ctm->pending_count(), 0u);
  // The original send plus every retry went through the route hook.
  EXPECT_EQ(h.routed.size(),
            static_cast<std::size_t>(1 + h.config.ctm_max_retries));
}

// --- the transport seam -------------------------------------------------

// The acceptance test for the pluggable Edge backend: two nodes link
// and exchange data over transport::LoopbackNet — the simulator, the
// fault model and net::Network are nowhere in this test's harness.
TEST(LoopbackBackend, NodePairLinksAndDeliversData) {
  transport::LoopbackNet net(5 * kMillisecond);
  Rng rng(99);
  Logger logger;
  MetricsRegistry metrics;
  Tracer tracer;

  auto deps = [&](net::Ipv4Addr ip) {
    p2p::NodeDeps d;
    d.timers = &net;
    d.rng = &rng;
    d.logger = &logger;
    d.metrics = &metrics;
    d.tracer = &tracer;
    d.edges = net.endpoint(ip);
    return d;
  };

  net::Ipv4Addr ip_a(10, 0, 0, 1);
  net::Ipv4Addr ip_b(10, 0, 0, 2);
  p2p::NodeConfig ca;
  ca.port = 17000;
  p2p::NodeConfig cb;
  cb.port = 17000;
  cb.bootstrap = {transport::Uri{transport::TransportKind::kUdp,
                                 net::Endpoint{ip_a, 17000}}};

  p2p::Node a(deps(ip_a), ca);
  p2p::Node b(deps(ip_b), cb);
  a.start();
  b.start();
  net.run_for(kMinute);

  EXPECT_TRUE(a.has_direct(b.address()));
  EXPECT_TRUE(b.has_direct(a.address()));

  std::vector<Bytes> got;
  a.set_data_handler([&](const p2p::Address&, BytesView payload) {
    got.emplace_back(payload.begin(), payload.end());
  });
  b.send_data(a.address(), Bytes{1, 2, 3});
  net.run_for(kSecond);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Bytes{1, 2, 3}));

  a.stop();
  b.stop();
}

}  // namespace
}  // namespace wow
