#include <gtest/gtest.h>

#include <algorithm>

#include "p2p/shortcut_overlord.h"
#include "test_util.h"

namespace wow {
namespace {

using testing::PublicOverlay;

TEST(Ring, TwoNodesLink) {
  PublicOverlay net(2);
  net.start_all();
  net.sim.run_until(30 * kSecond);
  EXPECT_TRUE(net.nodes[1]->connections().contains(net.nodes[0]->address()));
  EXPECT_TRUE(net.nodes[0]->connections().contains(net.nodes[1]->address()));
}

TEST(Ring, TenNodesBecomeRoutable) {
  PublicOverlay net(10);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  EXPECT_EQ(net.routable_count(), 10);
}

TEST(Ring, NearConnectionsMatchTrueRingOrder) {
  PublicOverlay net(16, /*seed=*/21);
  net.start_all();
  net.sim.run_until(3 * kMinute);

  // Compute ground-truth ring order.
  std::vector<p2p::Address> addrs;
  for (auto& n : net.nodes) addrs.push_back(n->address());
  std::sort(addrs.begin(), addrs.end());

  int correct = 0;
  for (auto& n : net.nodes) {
    auto it = std::find(addrs.begin(), addrs.end(), n->address());
    auto idx = static_cast<std::size_t>(it - addrs.begin());
    const p2p::Address& successor = addrs[(idx + 1) % addrs.size()];
    const p2p::Address& predecessor =
        addrs[(idx + addrs.size() - 1) % addrs.size()];
    if (n->connections().contains(successor) &&
        n->connections().contains(predecessor)) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, 16);
}

TEST(Ring, DataRoutesBetweenArbitraryPairs) {
  PublicOverlay net(12, /*seed=*/5);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  ASSERT_EQ(net.routable_count(), 12);

  int received = 0;
  for (auto& n : net.nodes) {
    n->set_data_handler([&received](const p2p::Address&, BytesView) {
      ++received;
    });
  }
  // Every node sends to every other node.
  for (auto& a : net.nodes) {
    for (auto& b : net.nodes) {
      if (a == b) continue;
      a->send_data(b->address(), Bytes{1, 2, 3});
    }
  }
  net.sim.run_for(30 * kSecond);
  EXPECT_EQ(received, 12 * 11);
}

TEST(Ring, FarConnectionsAreAcquired) {
  p2p::NodeConfig base;
  base.far_target = 3;
  PublicOverlay net(24, /*seed=*/9, base);
  net.start_all();
  net.sim.run_until(5 * kMinute);

  int with_far = 0;
  for (auto& n : net.nodes) {
    if (n->connections().count(p2p::ConnectionType::kStructuredFar) +
            n->connections().count(p2p::ConnectionType::kLeaf) >=
        1) {
      ++with_far;
    }
  }
  // Far links need a populated ring; most nodes should have some.
  EXPECT_GE(with_far, 20);
}

TEST(Ring, ShortcutFormsUnderSustainedTraffic) {
  p2p::NodeConfig base;
  base.shortcut.threshold = 5.0;
  base.shortcut.service_rate = 0.5;
  PublicOverlay net(16, /*seed=*/3, base);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  ASSERT_EQ(net.routable_count(), 16);

  // Pick two nodes far apart on the ring with no existing connection.
  p2p::Node* a = nullptr;
  p2p::Node* b = nullptr;
  for (auto& x : net.nodes) {
    for (auto& y : net.nodes) {
      if (x == y) continue;
      if (!x->connections().contains(y->address()) &&
          !y->connections().contains(x->address())) {
        a = x.get();
        b = y.get();
        break;
      }
    }
    if (a != nullptr) break;
  }
  ASSERT_NE(a, nullptr) << "all pairs already connected";

  // Sustained bidirectional traffic at 2 packets/s.
  for (int i = 0; i < 120; ++i) {
    net.sim.schedule(i * 500 * kMillisecond, [a, b] {
      a->send_data(b->address(), Bytes{0xaa});
    });
  }
  net.sim.run_for(90 * kSecond);
  EXPECT_TRUE(a->has_direct(b->address()));
}

TEST(Ring, ShortcutsDisabledNeverForm) {
  p2p::NodeConfig base;
  base.shortcut.enabled = false;
  base.shortcut.threshold = 5.0;
  PublicOverlay net(16, /*seed=*/3, base);
  net.start_all();
  net.sim.run_until(2 * kMinute);

  p2p::Node* a = net.nodes[1].get();
  p2p::Node* b = nullptr;
  for (auto& y : net.nodes) {
    if (y.get() != a && !a->connections().contains(y->address())) {
      b = y.get();
      break;
    }
  }
  ASSERT_NE(b, nullptr);
  for (int i = 0; i < 120; ++i) {
    net.sim.schedule(i * 500 * kMillisecond, [a, b] {
      a->send_data(b->address(), Bytes{0xaa});
    });
  }
  net.sim.run_for(90 * kSecond);
  EXPECT_FALSE(a->has_direct(b->address()));
  EXPECT_EQ(a->shortcut_overlord().shortcuts_requested(), 0u);
}

TEST(Ring, LateJoinerIntegrates) {
  PublicOverlay net(10, /*seed=*/13);
  // Start all but the last node.
  for (std::size_t i = 0; i + 1 < net.nodes.size(); ++i) {
    net.nodes[i]->start();
  }
  net.sim.run_until(2 * kMinute);

  net.nodes.back()->start();
  net.sim.run_for(kMinute);
  EXPECT_TRUE(net.nodes.back()->routable());
}

TEST(Ring, AbruptDeathIsDetectedByKeepalives) {
  PublicOverlay net(8, /*seed=*/15);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  ASSERT_EQ(net.routable_count(), 8);

  p2p::Address dead = net.nodes[3]->address();
  net.nodes[3]->stop();

  // Keepalive timeouts (ping_interval 15 s * retries) clean up state.
  net.sim.run_for(3 * kMinute);
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    if (i == 3) continue;
    EXPECT_FALSE(net.nodes[i]->connections().contains(dead))
        << "node " << i << " still holds state for the dead node";
  }
}

TEST(Ring, GracefulStopRemovesStateImmediately) {
  PublicOverlay net(8, /*seed=*/19);
  net.start_all();
  net.sim.run_until(2 * kMinute);

  p2p::Address leaving = net.nodes[4]->address();
  net.nodes[4]->stop_gracefully();
  net.sim.run_for(5 * kSecond);
  for (std::size_t i = 0; i < net.nodes.size(); ++i) {
    if (i == 4) continue;
    EXPECT_FALSE(net.nodes[i]->connections().contains(leaving));
  }
}

TEST(Ring, RestartRejoinsWithSameAddress) {
  PublicOverlay net(8, /*seed=*/23);
  net.start_all();
  net.sim.run_until(2 * kMinute);

  p2p::Address addr = net.nodes[5]->address();
  net.nodes[5]->stop();
  net.sim.run_for(kMinute);
  net.nodes[5]->restart();
  net.sim.run_for(2 * kMinute);

  EXPECT_EQ(net.nodes[5]->address(), addr);
  EXPECT_TRUE(net.nodes[5]->routable());
}

TEST(Ring, RoutableTimeIsRecorded) {
  PublicOverlay net(6, /*seed=*/29);
  net.start_all();
  net.sim.run_until(kMinute);
  for (std::size_t i = 1; i < net.nodes.size(); ++i) {
    ASSERT_TRUE(net.nodes[i]->routable_since().has_value());
    EXPECT_GT(*net.nodes[i]->routable_since(), 0);
  }
}

TEST(Ring, MultiHopDeliveryCountsHops) {
  p2p::NodeConfig base;
  base.far_target = 0;  // force pure ring routing: O(n) hops
  base.shortcut.enabled = false;
  PublicOverlay net(16, /*seed=*/31, base);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  ASSERT_EQ(net.routable_count(), 16);

  // Send from node 1 to the node that is ring-wise farthest from it.
  p2p::Node* src = net.nodes[1].get();
  p2p::Node* far = nullptr;
  RingId best{};
  for (auto& n : net.nodes) {
    if (n.get() == src) continue;
    RingId d = src->address().ring_distance(n->address());
    if (d > best) {
      best = d;
      far = n.get();
    }
  }
  ASSERT_NE(far, nullptr);
  int got = 0;
  far->set_data_handler([&](const p2p::Address&, BytesView) { ++got; });
  src->send_data(far->address(), Bytes{1});
  net.sim.run_for(10 * kSecond);
  ASSERT_EQ(got, 1);
  EXPECT_GE(far->stats().delivered_hops, 2u);
}

}  // namespace
}  // namespace wow
