// The real-clock backend end to end: UdpEdgeFactory over genuine
// 127.0.0.1 sockets, driven by RealtimeEventLoop.  The headline test
// brings up two p2p::Nodes over real UDP inside one process — the same
// stack the wowd daemon runs, minus the process boundary.

#include <gtest/gtest.h>

#include <cerrno>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "p2p/node.h"
#include "transport/realtime.h"
#include "transport/udp_edge.h"

namespace wow {
namespace {

const net::Ipv4Addr kLocalhost(127, 0, 0, 1);

/// Drive the loop in small slices until `done` holds or `cap` of real
/// time elapses.  Returns whether the condition was met.
template <typename Pred>
bool drive_until(transport::RealtimeEventLoop& loop, Pred done,
                 SimDuration cap = 5 * kSecond) {
  SimTime deadline = loop.now() + cap;
  while (!done() && loop.now() < deadline) {
    loop.run_for(10 * kMillisecond);
  }
  return done();
}

TEST(UdpEdgeFactory, DatagramsFlowBothWays) {
  transport::RealtimeEventLoop loop;
  transport::UdpEdgeFactory a(loop, kLocalhost);
  transport::UdpEdgeFactory b(loop, kLocalhost);
  a.bind(0);  // ephemeral; the chosen port shows up in local_uri()
  b.bind(0);
  ASSERT_TRUE(a.is_open());
  ASSERT_TRUE(b.is_open());
  ASSERT_NE(a.local_uri().endpoint.port, 0);
  ASSERT_NE(a.local_uri().endpoint.port, b.local_uri().endpoint.port);

  std::vector<Bytes> at_b;
  net::Endpoint b_saw_src;
  b.set_receiver([&](const net::Endpoint& src, SharedBytes payload) {
    b_saw_src = src;
    at_b.push_back(payload.to_bytes());
  });
  std::vector<Bytes> at_a;
  a.set_receiver([&](const net::Endpoint&, SharedBytes payload) {
    at_a.push_back(payload.to_bytes());
  });

  net::Endpoint to_b{kLocalhost, b.local_uri().endpoint.port};
  net::Endpoint to_a{kLocalhost, a.local_uri().endpoint.port};
  a.send_to(to_b, Bytes{1, 2, 3});
  b.send_to(to_a, Bytes{9, 8});

  ASSERT_TRUE(drive_until(loop, [&] {
    return !at_a.empty() && !at_b.empty();
  }));
  EXPECT_EQ(at_b[0], (Bytes{1, 2, 3}));
  EXPECT_EQ(at_a[0], (Bytes{9, 8}));
  // The receiver sees the sender's real bound endpoint (what NAT
  // traversal's learn_public_uri depends on).
  EXPECT_EQ(b_saw_src, to_a);
  EXPECT_GE(a.stats().datagrams_sent, 1u);
  EXPECT_GE(b.stats().datagrams_received, 1u);
}

TEST(UdpEdgeFactory, SendBatchLeavesInOneSyscall) {
  transport::RealtimeEventLoop loop;
  transport::UdpEdgeFactory a(loop, kLocalhost);
  transport::UdpEdgeFactory b(loop, kLocalhost);
  a.bind(0);
  b.bind(0);
  std::size_t got = 0;
  b.set_receiver([&](const net::Endpoint&, SharedBytes) { ++got; });

  net::Endpoint to_b{kLocalhost, b.local_uri().endpoint.port};
  // Queue a pile of frames outside the loop, then flush: far fewer
  // sendmmsg calls than datagrams.
  for (int i = 0; i < 40; ++i) a.send_to(to_b, Bytes{std::uint8_t(i)});
  a.flush();
  EXPECT_EQ(a.stats().datagrams_sent, 40u);
  EXPECT_LE(a.stats().send_batches, 2u);

  ASSERT_TRUE(drive_until(loop, [&] { return got == 40; }));
  EXPECT_LE(b.stats().recv_batches, b.stats().datagrams_received);
}

TEST(UdpEdgeFactory, EdgeReceiverGetsItsRemotesFrames) {
  transport::RealtimeEventLoop loop;
  transport::UdpEdgeFactory a(loop, kLocalhost);
  transport::UdpEdgeFactory b(loop, kLocalhost);
  a.bind(0);
  b.bind(0);
  net::Endpoint to_b{kLocalhost, b.local_uri().endpoint.port};
  net::Endpoint to_a{kLocalhost, a.local_uri().endpoint.port};

  std::size_t via_edge = 0;
  std::size_t via_factory = 0;
  b.set_receiver([&](const net::Endpoint&, SharedBytes) { ++via_factory; });
  p2p::Edge& edge = b.edge_to(to_a);
  edge.set_receiver([&](SharedBytes) { ++via_edge; });
  EXPECT_EQ(edge.remote_uri().endpoint, to_a);

  a.send_to(to_b, Bytes{1});
  ASSERT_TRUE(drive_until(loop, [&] { return via_edge + via_factory > 0; }));
  EXPECT_EQ(via_edge, 1u);
  EXPECT_EQ(via_factory, 0u);
}

TEST(UdpEdgeFactory, IcmpRefusalReportsAndClosesEdge) {
  transport::RealtimeEventLoop loop;
  transport::UdpEdgeFactory a(loop, kLocalhost);
  a.bind(0);

  // A port guaranteed dead: bind an ephemeral socket, note the port,
  // close it.
  net::Endpoint dead;
  {
    transport::UdpEdgeFactory probe(loop, kLocalhost);
    probe.bind(0);
    dead = net::Endpoint{kLocalhost, probe.local_uri().endpoint.port};
  }

  std::vector<std::pair<net::Endpoint, p2p::DisconnectCause>> reports;
  a.set_error_handler([&](const net::Endpoint& remote,
                          p2p::DisconnectCause cause, int err) {
    EXPECT_EQ(err, ECONNREFUSED);
    reports.emplace_back(remote, cause);
  });
  p2p::Edge& edge = a.edge_to(dead);
  (void)edge;

  // Loopback refusals can take one extra round trip to surface; prod
  // a few times.
  for (int i = 0; i < 3 && reports.empty(); ++i) {
    a.send_to(dead, Bytes{42});
    a.flush();
    drive_until(loop, [&] { return !reports.empty(); },
                200 * kMillisecond);
  }
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports[0].first, dead);
  EXPECT_EQ(reports[0].second, p2p::DisconnectCause::kCloseFrame);
  EXPECT_GE(a.stats().icmp_errors + a.stats().send_errors, 1u);
  // The edge handle to the dead remote was reaped: a fresh edge_to()
  // materializes a new, open edge.
  EXPECT_FALSE(a.edge_to(dead).closed());
}

TEST(UdpEdgeFactory, ClassifiesSocketErrors) {
  using transport::UdpEdgeFactory;
  EXPECT_EQ(UdpEdgeFactory::classify_socket_error(ECONNREFUSED),
            p2p::DisconnectCause::kCloseFrame);
  EXPECT_EQ(UdpEdgeFactory::classify_socket_error(EHOSTUNREACH),
            p2p::DisconnectCause::kLinkError);
  EXPECT_EQ(UdpEdgeFactory::classify_socket_error(ENETUNREACH),
            p2p::DisconnectCause::kLinkError);
  EXPECT_EQ(UdpEdgeFactory::classify_socket_error(EMSGSIZE),
            p2p::DisconnectCause::kLinkError);
}

// The acceptance test for the whole PR: two full p2p nodes — linking
// engine, keepalives, CTM, the lot — form a ring over real UDP sockets
// on the real clock.  Identical protocol code to the simulator runs;
// only the injected NodeDeps differ.
TEST(RealtimeBackend, NodePairLinksOverRealUdp) {
  transport::RealtimeEventLoop loop;
  Rng rng(7);
  Logger logger;
  MetricsRegistry metrics;
  Tracer tracer;

  transport::UdpEdgeFactory* factory_a = nullptr;
  auto deps = [&](transport::UdpEdgeFactory** out) {
    p2p::NodeDeps d;
    d.timers = &loop;
    d.rng = &rng;
    d.logger = &logger;
    d.metrics = &metrics;
    d.tracer = &tracer;
    auto factory =
        std::make_unique<transport::UdpEdgeFactory>(loop, kLocalhost);
    if (out != nullptr) *out = factory.get();
    d.edges = std::move(factory);
    return d;
  };

  // Fast maintenance so the first bootstrap probe lands within
  // milliseconds of real time, not the default 2 s.
  p2p::NodeConfig ca;
  ca.port = 0;
  ca.maintenance_period = 50 * kMillisecond;
  p2p::Node a(deps(&factory_a), ca);
  a.start();
  std::uint16_t a_port = factory_a->local_uri().endpoint.port;
  ASSERT_NE(a_port, 0);

  p2p::NodeConfig cb;
  cb.port = 0;
  cb.maintenance_period = 50 * kMillisecond;
  cb.bootstrap = {transport::Uri{transport::TransportKind::kUdp,
                                 net::Endpoint{kLocalhost, a_port}}};
  p2p::Node b(deps(nullptr), cb);
  b.start();

  ASSERT_TRUE(drive_until(loop, [&] {
    return a.has_direct(b.address()) && b.has_direct(a.address());
  }, 10 * kSecond));

  std::vector<Bytes> got;
  a.set_data_handler([&](const p2p::Address&, BytesView payload) {
    got.emplace_back(payload.begin(), payload.end());
  });
  b.send_data(a.address(), Bytes{1, 2, 3});
  ASSERT_TRUE(drive_until(loop, [&] { return !got.empty(); }));
  EXPECT_EQ(got[0], (Bytes{1, 2, 3}));

  a.stop();
  b.stop();
}

}  // namespace
}  // namespace wow
