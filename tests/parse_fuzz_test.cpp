// Deterministic fuzz tests for every wire parser: truncation sweeps,
// seeded bit flips, and raw garbage must all yield a clean rejection
// (nullopt) or a successful parse — never UB.  Run under the ASan/UBSan
// CI job, these are the "no parser crashes under corruption" gate.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>

#include "common/flight_recorder.h"
#include "ipop/ip_packet.h"
#include "p2p/node_stats.h"
#include "p2p/packet.h"
#include "test_util.h"
#include "transport/uri.h"
#include "vtcp/segment.h"

namespace wow {
namespace {

/// One representative well-formed frame per parser, with the variable
/// sections (URI lists, payloads, neighbor hints) populated so every
/// parse branch is reachable by mutation.
[[nodiscard]] std::vector<transport::Uri> sample_uris() {
  return {
      transport::Uri{transport::TransportKind::kUdp,
                     net::Endpoint{net::Ipv4Addr(10, 0, 0, 1), 17000}},
      transport::Uri{transport::TransportKind::kUdp,
                     net::Endpoint{net::Ipv4Addr(128, 4, 5, 6), 40001}},
  };
}

[[nodiscard]] Bytes sample_routed() {
  p2p::RoutedPacket p;
  p.ttl = 48;
  p.hops = 3;
  p.mode = p2p::DeliveryMode::kNearest;
  p.type = p2p::RoutedType::kData;
  p.src = RingId{0x1111};
  p.dst = RingId{0x2222};
  p.via = RingId{0x3333};
  p.trace_id = 77;
  p.set_payload(Bytes{1, 2, 3, 4, 5, 6, 7, 8});
  return p.serialize();
}

[[nodiscard]] Bytes sample_link() {
  p2p::LinkFrame f;
  f.type = p2p::LinkType::kRequest;
  f.con_type = p2p::ConnectionType::kStructuredNear;
  f.token = 99;
  f.sender = RingId{0x4444};
  f.observed = net::Endpoint{net::Ipv4Addr(150, 0, 0, 9), 12345};
  f.uris = sample_uris();
  return f.serialize();
}

[[nodiscard]] Bytes sample_ctm_request() {
  p2p::CtmRequest req;
  req.con_type = p2p::ConnectionType::kStructuredFar;
  req.token = 41;
  req.forwarder = RingId{0x5555};
  req.uris = sample_uris();
  return req.serialize();
}

[[nodiscard]] Bytes sample_ctm_reply() {
  p2p::CtmReply rep;
  rep.con_type = p2p::ConnectionType::kShortcut;
  rep.token = 42;
  rep.uris = sample_uris();
  rep.neighbors.push_back(
      p2p::NeighborHint{RingId{0x6666}, sample_uris()});
  rep.neighbors.push_back(p2p::NeighborHint{RingId{0x7777}, {}});
  return rep.serialize();
}

[[nodiscard]] Bytes sample_relay() {
  Bytes inner = sample_link();
  return p2p::RelayFrame::wrap(RingId{0x8888}, RingId{0x9999},
                               RingId{0xaaaa}, BytesView(inner));
}

[[nodiscard]] Bytes sample_ip_packet() {
  ipop::IpPacket p;
  p.proto = ipop::IpProto::kUdp;
  p.ttl = 64;
  p.id = 7;
  p.src = net::Ipv4Addr(172, 16, 1, 2);
  p.dst = net::Ipv4Addr(172, 16, 1, 3);
  p.payload = Bytes{9, 8, 7, 6, 5};
  return p.serialize();
}

[[nodiscard]] Bytes sample_segment() {
  vtcp::Segment s;
  s.src_port = 40000;
  s.dst_port = 80;
  s.seq = 1000;
  s.ack = 2000;
  s.flags = vtcp::kSyn | vtcp::kAck;
  s.window = 65535;
  s.payload = Bytes{1, 2, 3};
  return s.serialize();
}

/// Every parser under one uniform signature: bytes in, accepted or not
/// out.  Each call must be memory-safe regardless of input.
using ParseFn = bool (*)(BytesView);

const std::pair<const char*, ParseFn> kParsers[] = {
    {"routed",
     [](BytesView b) { return p2p::RoutedPacket::parse(b).has_value(); }},
    {"link",
     [](BytesView b) { return p2p::LinkFrame::parse(b).has_value(); }},
    {"ctm_request",
     [](BytesView b) { return p2p::CtmRequest::parse(b).has_value(); }},
    {"ctm_reply",
     [](BytesView b) { return p2p::CtmReply::parse(b).has_value(); }},
    {"relay",
     [](BytesView b) { return p2p::RelayFrame::parse(b).has_value(); }},
    {"ip_packet",
     [](BytesView b) { return ipop::IpPacket::parse(b).has_value(); }},
    {"icmp_echo",
     [](BytesView b) { return ipop::IcmpEcho::parse(b).has_value(); }},
    {"segment",
     [](BytesView b) { return vtcp::Segment::parse(b).has_value(); }},
};

[[nodiscard]] std::vector<Bytes> sample_frames() {
  return {sample_routed(),    sample_link(),      sample_ctm_request(),
          sample_ctm_reply(), sample_relay(),     sample_ip_packet(),
          sample_segment()};
}

/// Every prefix of every valid frame, through every parser.  A strict
/// prefix of a frame must never be accepted by its own parser (all our
/// formats are length-checked to the end of the fixed header and
/// explicit about variable-length sections).
TEST(ParseFuzz, TruncationSweepIsCleanlyRejected) {
  for (const Bytes& frame : sample_frames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      BytesView prefix(frame.data(), len);
      for (const auto& [name, parse] : kParsers) {
        (void)parse(prefix);  // must not crash; acceptance not asserted
      }
    }
  }
  // Full frames parse through at least one parser each.
  for (const Bytes& frame : sample_frames()) {
    bool accepted = false;
    for (const auto& [name, parse] : kParsers) {
      accepted = accepted || parse(frame);
    }
    EXPECT_TRUE(accepted);
  }
}

/// Strict prefixes of a frame never parse as that frame (no parser
/// reads past what it thinks the frame contains and silently succeeds
/// on a truncated fixed header).
TEST(ParseFuzz, StrictHeaderPrefixRejected) {
  // Header-only truncations: cut inside the fixed header, before any
  // variable-length payload whose length field could legitimately make
  // a shorter buffer valid.
  Bytes routed = sample_routed();
  EXPECT_FALSE(p2p::RoutedPacket::parse(
                   BytesView(routed.data(), p2p::RoutedPacket::kHeaderBytes - 1))
                   .has_value());
  Bytes link = sample_link();
  EXPECT_FALSE(
      p2p::LinkFrame::parse(BytesView(link.data(), 30)).has_value());
  Bytes ip = sample_ip_packet();
  EXPECT_FALSE(
      ipop::IpPacket::parse(BytesView(ip.data(), 13)).has_value());
  Bytes seg = sample_segment();
  EXPECT_FALSE(
      vtcp::Segment::parse(BytesView(seg.data(), 16)).has_value());
}

/// The frame checksum is the guard that keeps bit-flipped addresses out
/// of connection tables: any single-bit corruption of a checksummed
/// byte must be rejected, while tampering with the in-flight-mutable
/// routed fields (ttl/hops/bounced/via — rewritten by every forwarding
/// hop) must NOT invalidate the origin's checksum.
TEST(ParseFuzz, ChecksumRejectsTamperedFrames) {
  Bytes routed = sample_routed();
  // Every bit of src/dst (bytes 7..46) and of the payload.
  for (std::size_t byte : {std::size_t{7}, std::size_t{26}, std::size_t{46},
                           routed.size() - 1}) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutant = routed;
      mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(p2p::RoutedPacket::parse(BytesView(mutant)).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
  // Truncating into the payload is also a checksum mismatch.
  EXPECT_FALSE(
      p2p::RoutedPacket::parse(BytesView(routed.data(), routed.size() - 1))
          .has_value());
  // The mutable tail is deliberately outside the checksum.
  Bytes hop = routed;
  hop[55] ^= 0x0f;  // ttl
  hop[56] += 1;     // hops
  EXPECT_TRUE(p2p::RoutedPacket::parse(BytesView(hop)).has_value());

  Bytes link = sample_link();
  for (std::size_t byte = 5; byte < link.size(); byte += 3) {
    Bytes mutant = link;
    mutant[byte] ^= 0x10;
    EXPECT_FALSE(p2p::LinkFrame::parse(BytesView(mutant)).has_value())
        << "byte " << byte;
  }

  // Relay frames: every checksummed byte (ring ids + tunneled payload)
  // is guarded, while the hops byte — rewritten in place by the relay
  // agent — is deliberately outside the checksum.
  Bytes relay = sample_relay();
  for (std::size_t byte = 5; byte < relay.size(); byte += 7) {
    if (byte == 65) continue;  // hops: mutable, tested below
    Bytes mutant = relay;
    mutant[byte] ^= 0x04;
    EXPECT_FALSE(p2p::RelayFrame::parse(BytesView(mutant)).has_value())
        << "byte " << byte;
  }
  Bytes forwarded = relay;
  forwarded[65] += 1;  // the relay agent's in-place hop increment
  auto parsed = p2p::RelayFrame::parse(BytesView(forwarded));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->hops, 1);
  // A header-only relay frame (no tunneled payload) is nonsense.
  EXPECT_FALSE(
      p2p::RelayFrame::parse(
          BytesView(relay.data(), p2p::RelayFrame::kHeaderBytes))
          .has_value());
  // The inner payload of a valid tunnel parses as the wrapped link frame.
  EXPECT_TRUE(p2p::LinkFrame::parse(parsed->payload()).has_value());
}

// ---------------------------------------------------------------------
// Checksum-valid adversarial mutations.  The FNV-1a frame checksum is an
// INTEGRITY check, not an authenticity check: any peer who can emit
// frames can compute it.  These tests mutate a checksummed field and
// then re-checksum, mirroring the production layout in packet.cpp byte
// for byte — so they double as a drift guard on the checksummed regions,
// and they pin down exactly what the parser can and cannot reject when
// the adversary does its homework (the byzantine defenses above the
// parser exist precisely for the "cannot" half).

constexpr std::uint32_t kFnvOffset = 2166136261u;
constexpr std::uint32_t kFnvPrime = 16777619u;

[[nodiscard]] std::uint32_t fnv1a(std::uint32_t h, const std::uint8_t* p,
                                  std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

void store_csum(Bytes& f, std::uint32_t v) {
  f[1] = static_cast<std::uint8_t>(v >> 24);
  f[2] = static_cast<std::uint8_t>(v >> 16);
  f[3] = static_cast<std::uint8_t>(v >> 8);
  f[4] = static_cast<std::uint8_t>(v);
}

/// Recompute the checksum the way the origin would: kind byte, the
/// frame-specific immutable region, skipping the checksum field itself
/// and any hop-mutable bytes.
void rechecksum_routed(Bytes& f) {
  std::uint32_t h = fnv1a(kFnvOffset, f.data(), 1);
  h = fnv1a(h, f.data() + 5, 50);
  h = fnv1a(h, f.data() + p2p::RoutedPacket::kHeaderBytes,
            f.size() - p2p::RoutedPacket::kHeaderBytes);
  store_csum(f, h);
}

void rechecksum_link(Bytes& f) {
  std::uint32_t h = fnv1a(kFnvOffset, f.data(), 1);
  h = fnv1a(h, f.data() + 5, f.size() - 5);
  store_csum(f, h);
}

void rechecksum_relay(Bytes& f) {
  std::uint32_t h = fnv1a(kFnvOffset, f.data(), 1);
  h = fnv1a(h, f.data() + 5, 60);
  h = fnv1a(h, f.data() + p2p::RelayFrame::kHeaderBytes,
            f.size() - p2p::RelayFrame::kHeaderBytes);
  store_csum(f, h);
}

/// A re-checksummed identity forgery sails through every parser — the
/// parser's contract under a byzantine peer is structural validity only.
/// Anything the adversary rewrites coherently (addresses, tokens, relay
/// headers) MUST reach the protocol layer, whose defenses attribute and
/// reject it; asserting acceptance here keeps that boundary honest.
TEST(ParseFuzz, RechecksummedForgeryPassesTheParser) {
  // Routed frame with a rewritten source address.
  Bytes routed = sample_routed();
  routed[7] ^= 0xff;  // inside src (bytes 7..26)
  rechecksum_routed(routed);
  auto p = p2p::RoutedPacket::parse(BytesView(routed));
  ASSERT_TRUE(p.has_value());
  EXPECT_NE(p->src, RingId{0x1111});  // the forgery went through

  // Link reply claiming a different sender identity.
  Bytes link = sample_link();
  link[11] ^= 0xa5;  // inside sender (bytes 11..30)
  rechecksum_link(link);
  auto lf = p2p::LinkFrame::parse(BytesView(link));
  ASSERT_TRUE(lf.has_value());
  EXPECT_NE(lf->sender, RingId{0x4444});

  // Relay frame with a forged source ring id — the wire form of the
  // adversary fabric's forged-relay attack.
  Bytes relay = sample_relay();
  relay[5] ^= 0x5a;  // inside src (bytes 5..24)
  rechecksum_relay(relay);
  auto rf = p2p::RelayFrame::parse(BytesView(relay));
  ASSERT_TRUE(rf.has_value());
  EXPECT_NE(rf->src, RingId{0x8888});
}

/// Semantic validation is independent of the checksum: enum fields out
/// of range stay rejected even when the adversary re-checksums, and a
/// relay tunnel emptied of its payload is still nonsense.
TEST(ParseFuzz, RechecksummedFramesStillFaceSemanticChecks) {
  Bytes routed = sample_routed();
  routed[6] = 200;  // RoutedType out of range
  rechecksum_routed(routed);
  EXPECT_FALSE(p2p::RoutedPacket::parse(BytesView(routed)).has_value());

  routed = sample_routed();
  routed[5] = 7;  // DeliveryMode out of range
  rechecksum_routed(routed);
  EXPECT_FALSE(p2p::RoutedPacket::parse(BytesView(routed)).has_value());

  Bytes link = sample_link();
  link[5] = 0;  // LinkType zero is invalid
  rechecksum_link(link);
  EXPECT_FALSE(p2p::LinkFrame::parse(BytesView(link)).has_value());

  link = sample_link();
  link[6] = 99;  // ConnectionType out of range
  rechecksum_link(link);
  EXPECT_FALSE(p2p::LinkFrame::parse(BytesView(link)).has_value());

  // Header-only relay with a freshly valid header checksum: the empty
  // tunnel check fires before any payload checksum could matter.
  Bytes relay = sample_relay();
  relay.resize(p2p::RelayFrame::kHeaderBytes);
  rechecksum_relay(relay);
  EXPECT_FALSE(p2p::RelayFrame::parse(BytesView(relay)).has_value());
}

/// Seeded storm of single-byte mutations, each re-checksummed so it
/// clears the integrity gate, through every parser.  Unlike the plain
/// bit-flip storm most of these are ACCEPTED — the assertion is that
/// structurally-valid-but-hostile frames never crash a parser, and that
/// a healthy fraction really does get past the checksum (if none did,
/// the re-checksum mirror has drifted from packet.cpp).
TEST(ParseFuzz, RechecksummedMutationStormNeverCrashes) {
  std::mt19937_64 rng(20260808);
  struct Case {
    Bytes (*make)();
    void (*fix)(Bytes&);
    std::size_t lo, hi;  // mutable checksummed region [lo, hi)
  };
  const Case cases[] = {
      {&sample_routed, &rechecksum_routed, 5, 55},
      {&sample_link, &rechecksum_link, 5, 0},  // hi=0: to end of frame
      {&sample_relay, &rechecksum_relay, 5, 65},
  };
  int accepted = 0;
  for (int round = 0; round < 1500; ++round) {
    const Case& c = cases[round % 3];
    Bytes mutant = c.make();
    std::size_t hi = c.hi == 0 ? mutant.size() : c.hi;
    std::size_t byte = c.lo + rng() % (hi - c.lo);
    mutant[byte] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    c.fix(mutant);
    for (const auto& [name, parse] : kParsers) {
      accepted += parse(mutant) ? 1 : 0;
    }
  }
  EXPECT_GT(accepted, 500);
}

// ---------------------------------------------------------------------
// Enum drift for the defense plane: the byzantine PR added flight kinds
// and a disconnect cause; reports must name them, and the names below
// are pinned so a reorder or rename shows up here instead of as silent
// "unknown" rows in a postmortem.

TEST(EnumDrift, DisconnectCauseNamesUniqueAndKnown) {
  std::set<std::string> names;
  for (int i = 0; i < static_cast<int>(p2p::DisconnectCause::kCount); ++i) {
    const char* s = to_string(static_cast<p2p::DisconnectCause>(i));
    EXPECT_STRNE(s, "unknown") << "DisconnectCause " << i;
    EXPECT_TRUE(names.insert(s).second) << "duplicate name " << s;
  }
  EXPECT_STREQ(to_string(p2p::DisconnectCause::kCount), "unknown");
  EXPECT_STREQ(to_string(p2p::DisconnectCause::kMisbehavior), "misbehavior");
}

TEST(EnumDrift, DefenseFlightKindsAreNamed) {
  EXPECT_STREQ(to_string(FlightKind::kMisbehavior), "defense.misbehavior");
  EXPECT_STREQ(to_string(FlightKind::kRateShed), "defense.rate_shed");
  EXPECT_STREQ(to_string(FlightKind::kReplayHit), "defense.replay_hit");
  EXPECT_STREQ(to_string(FlightKind::kForgedRelay), "defense.forged_relay");
}

/// Seeded bit-flip storms over every frame type, every parser.  The
/// assertion is the absence of UB (this test runs under ASan/UBSan in
/// CI); acceptance may go either way since some flips land in payload
/// bytes no parser validates.
TEST(ParseFuzz, BitFlipsNeverCrashAnyParser) {
  std::mt19937_64 rng(20260806);
  const std::vector<Bytes> frames = sample_frames();
  for (int round = 0; round < 2000; ++round) {
    Bytes mutant = frames[round % frames.size()];
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      std::size_t bit = rng() % (mutant.size() * 8);
      mutant[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
    }
    for (const auto& [name, parse] : kParsers) {
      (void)parse(mutant);
    }
  }
}

/// Unstructured garbage of every small length.
TEST(ParseFuzz, RandomGarbageNeverCrashesAnyParser) {
  std::mt19937_64 rng(424242);
  for (int round = 0; round < 500; ++round) {
    Bytes garbage(rng() % 160);
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    for (const auto& [name, parse] : kParsers) {
      (void)parse(garbage);
    }
  }
}

/// End-to-end: a running overlay under heavy in-flight corruption keeps
/// running (no crash, no UB) and visibly counts parser rejections in
/// the parse_reject metric.
TEST(ParseFuzz, OverlaySurvivesWireCorruption) {
  testing::PublicOverlay net(8, /*seed=*/5);
  net.start_all();
  net.sim.run_until(2 * kMinute);
  ASSERT_EQ(net.routable_count(), 8);

  net::FaultSpec corrupt;
  corrupt.kind = net::FaultKind::kCorrupt;
  corrupt.at = net.sim.now();
  corrupt.duration = 2 * kMinute;
  corrupt.rate = 0.8;
  net.network.faults().inject(corrupt);

  for (int burst = 0; burst < 20; ++burst) {
    for (std::size_t i = 0; i < net.nodes.size(); ++i) {
      std::size_t peer =
          (i + 1 + static_cast<std::size_t>(burst)) % net.nodes.size();
      if (peer == i) continue;
      net.nodes[i]->send_data(net.nodes[peer]->address(),
                              Bytes{0xde, 0xad, 0xbe, 0xef});
    }
    net.sim.run_for(5 * kSecond);
  }
  net.sim.run_for(3 * kMinute);

  const auto& fs = net.network.faults().stats();
  EXPECT_GT(fs.corrupted_delivered, 0u);
  EXPECT_GT(fs.corrupted_dropped, 0u);

  std::uint64_t rejects = 0;
  for (const auto& n : net.nodes) rejects += n->stats().parse_rejects;
  EXPECT_GT(rejects, 0u);
  // ...and the fleet-wide registry counter agrees.
  bool found = false;
  for (const auto& s : net.sim.metrics().snapshot()) {
    if (s.name == "parse_reject" && s.labels.component == "node") {
      found = true;
      EXPECT_EQ(static_cast<std::uint64_t>(s.value), rejects);
    }
  }
  EXPECT_TRUE(found);
}

// --- text parsers (URI / dotted quad) -----------------------------------

/// The strict Uri grammar: accepted spellings are exactly the canonical
/// ones, and parse/to_string round-trip both ways.
TEST(ParseFuzz, UriAcceptsOnlyCanonicalSpellings) {
  auto ok = [](std::string_view s) {
    return transport::Uri::parse(s).has_value();
  };
  EXPECT_TRUE(ok("brunet.udp://192.0.1.1:1024"));
  EXPECT_TRUE(ok("brunet.tcp://10.0.0.1:1"));
  EXPECT_TRUE(ok("brunet.udp://255.255.255.255:65535"));
  EXPECT_TRUE(ok("brunet.udp://0.0.0.0:17001"));

  // Garbage shapes.
  EXPECT_FALSE(ok(""));
  EXPECT_FALSE(ok("brunet.udp://"));
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4"));       // no port
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:"));      // empty port
  EXPECT_FALSE(ok("udp://1.2.3.4:80"));           // unknown scheme
  EXPECT_FALSE(ok("brunet.sctp://1.2.3.4:80"));
  EXPECT_FALSE(ok("brunet.udp:/1.2.3.4:80"));     // malformed separator
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:80 "));   // trailing junk
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:80x"));

  // Out-of-range / non-canonical ports.
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:0"));      // port 0 names nothing
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:65536"));
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:99999"));
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:123456"));
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:017001"));  // leading zero
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:00"));
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4:-1"));

  // Non-canonical / hostile dotted quads.
  EXPECT_FALSE(ok("brunet.udp://1.2.3:80"));
  EXPECT_FALSE(ok("brunet.udp://1.2.3.4.5:80"));
  EXPECT_FALSE(ok("brunet.udp://256.0.0.1:80"));
  EXPECT_FALSE(ok("brunet.udp://010.0.0.1:80"));   // octal-ambiguous
  EXPECT_FALSE(ok("brunet.udp://1.2.3.0004:80"));
  EXPECT_FALSE(ok("brunet.udp://.1.2.3.4:80"));
  EXPECT_FALSE(ok("brunet.udp://1..2.3:80"));
  EXPECT_FALSE(ok("brunet.udp://example.com:80"));  // no DNS in URIs

  // IPv6 literals are recognized and deliberately rejected: the wire
  // format carries endpoints as u32 IPv4 (write_uri), so accepting
  // them here would create un-advertisable, un-routable endpoints.
  EXPECT_FALSE(ok("brunet.udp://[::1]:17001"));
  EXPECT_FALSE(ok("brunet.udp://[2001:db8::1]:17001"));
  EXPECT_FALSE(ok("brunet.udp://::1:17001"));
}

TEST(ParseFuzz, UriRoundTripsBothWays) {
  std::mt19937_64 rng(7777);
  for (int round = 0; round < 2000; ++round) {
    transport::Uri uri;
    uri.kind = (rng() & 1) != 0 ? transport::TransportKind::kUdp
                                : transport::TransportKind::kTcp;
    uri.endpoint.ip = net::Ipv4Addr{static_cast<std::uint32_t>(rng())};
    uri.endpoint.port = static_cast<std::uint16_t>(1 + rng() % 65535);
    auto back = transport::Uri::parse(uri.to_string());
    ASSERT_TRUE(back.has_value()) << uri.to_string();
    EXPECT_EQ(*back, uri);
  }
}

TEST(ParseFuzz, UriTextMutationsNeverCrash) {
  // Character-level mutations of a valid URI: every outcome is either
  // nullopt or a URI that re-serializes canonically — never UB.
  std::mt19937_64 rng(31337);
  const std::string seed_text = "brunet.udp://192.168.1.17:17001";
  for (int round = 0; round < 4000; ++round) {
    std::string mutant = seed_text;
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      std::size_t at = rng() % mutant.size();
      switch (rng() % 3) {
        case 0: mutant[at] = static_cast<char>(rng() % 256); break;
        case 1: mutant.erase(at, 1); break;
        default:
          mutant.insert(at, 1, static_cast<char>('0' + rng() % 10));
      }
      if (mutant.empty()) break;
    }
    auto parsed = transport::Uri::parse(mutant);
    if (parsed) {
      auto again = transport::Uri::parse(parsed->to_string());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *parsed);
    }
  }
}

TEST(ParseFuzz, Ipv4StrictGrammar) {
  auto ip = [](std::string_view s) { return net::Ipv4Addr::parse(s); };
  ASSERT_TRUE(ip("10.128.0.1").has_value());
  EXPECT_EQ(ip("10.128.0.1")->to_string(), "10.128.0.1");
  EXPECT_TRUE(ip("0.0.0.0").has_value());
  EXPECT_TRUE(ip("255.255.255.255").has_value());

  EXPECT_FALSE(ip("").has_value());
  EXPECT_FALSE(ip("1.2.3").has_value());
  EXPECT_FALSE(ip("1.2.3.4.5").has_value());
  EXPECT_FALSE(ip("1.2.3.256").has_value());
  EXPECT_FALSE(ip("01.2.3.4").has_value());     // leading zero
  EXPECT_FALSE(ip("1.2.3.04").has_value());
  EXPECT_FALSE(ip("0001.2.3.4").has_value());   // >3 digits
  EXPECT_FALSE(ip("1.2.3.4 ").has_value());
  EXPECT_FALSE(ip(" 1.2.3.4").has_value());
  EXPECT_FALSE(ip("1.2.3.a").has_value());
  EXPECT_FALSE(ip("1,2,3,4").has_value());
  EXPECT_FALSE(ip("::1").has_value());
}

}  // namespace
}  // namespace wow
