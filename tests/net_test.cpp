#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "net/network.h"
#include "sim/simulator.h"

namespace wow::net {
namespace {

struct Received {
  Endpoint src;
  Bytes payload;
};

/// Bind a recorder on `port` of `host`; the optional fills on delivery.
void expect_on(Host& host, std::uint16_t port,
               std::optional<Received>& slot) {
  host.bind(port, [&slot](const Endpoint& src, std::uint16_t,
                          SharedBytes payload) {
    slot = Received{src, payload.to_bytes()};
  });
}

Bytes payload_of(std::uint8_t v) { return Bytes{v, v, v}; }

class NetTest : public ::testing::Test {
 protected:
  NetTest() : sim(11), network(sim) {
    site_a = network.add_site("A");
    site_b = network.add_site("B");
    network.set_site_link(site_a, site_b,
                          LinkModel{20 * kMillisecond, 0, 0.0});
    network.set_lan(LinkModel{200 * kMicrosecond, 0, 0.0});
    network.set_same_site(LinkModel{1 * kMillisecond, 0, 0.0});
  }

  Host& public_host(std::uint8_t n, SiteId site) {
    Host::Config c;
    c.name = "pub" + std::to_string(n);
    return network.add_host(Ipv4Addr(128, 0, 0, n), Network::kInternet, site,
                            c);
  }

  DomainId nat_domain(std::uint8_t n, SiteId site, NatBox::Config cfg) {
    return network.add_nat_domain("nat" + std::to_string(n),
                                  Network::kInternet, site,
                                  Ipv4Addr(150, 0, 0, n), cfg);
  }

  Host& private_host(DomainId domain, std::uint8_t n, SiteId site) {
    Host::Config c;
    c.name = "priv" + std::to_string(n);
    return network.add_host(Ipv4Addr(192, 168, static_cast<std::uint8_t>(domain), n),
                            domain, site, c);
  }

  sim::Simulator sim;
  Network network;
  SiteId site_a = 0, site_b = 0;
};

TEST_F(NetTest, PublicToPublicDelivers) {
  Host& a = public_host(1, site_a);
  Host& b = public_host(2, site_b);
  std::optional<Received> got;
  expect_on(b, 50, got);

  network.send(a, 40, Endpoint{b.ip(), 50}, payload_of(9));
  sim.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, (Endpoint{a.ip(), 40}));
  EXPECT_EQ(got->payload, payload_of(9));
  // Transit must reflect the 20 ms site link.
  EXPECT_GE(sim.now(), 20 * kMillisecond);
  EXPECT_LT(sim.now(), 25 * kMillisecond);
}

TEST_F(NetTest, DeliveryToUnboundPortIsCounted) {
  Host& a = public_host(1, site_a);
  Host& b = public_host(2, site_a);
  network.send(a, 40, Endpoint{b.ip(), 50}, payload_of(1));
  sim.run();
  EXPECT_EQ(network.stats().drops(Network::DropReason::kNoListener), 1u);
  EXPECT_EQ(network.stats().delivered, 0u);
}

TEST_F(NetTest, PrivateToPublicTranslatesSource) {
  Host& pub = public_host(1, site_a);
  DomainId d = nat_domain(1, site_b, {});
  Host& priv = private_host(d, 10, site_b);
  std::optional<Received> got;
  expect_on(pub, 50, got);

  network.send(priv, 40, Endpoint{pub.ip(), 50}, payload_of(2));
  sim.run();

  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src.ip, Ipv4Addr(150, 0, 0, 1));  // NAT WAN address
  EXPECT_NE(got->src.port, 40);                    // translated port
}

TEST_F(NetTest, InboundWithoutMappingDropped) {
  Host& pub = public_host(1, site_a);
  DomainId d = nat_domain(1, site_b, {});
  Host& priv = private_host(d, 10, site_b);
  std::optional<Received> got;
  expect_on(priv, 40, got);

  // Public host sends at the NAT's address blindly.
  network.send(pub, 50, Endpoint{Ipv4Addr(150, 0, 0, 1), 20000},
               payload_of(3));
  sim.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(network.stats().drops(Network::DropReason::kNatFiltered), 1u);
}

TEST_F(NetTest, PortRestrictedReplyPath) {
  Host& pub = public_host(1, site_a);
  NatBox::Config nc;
  nc.type = NatType::kPortRestricted;
  DomainId d = nat_domain(1, site_b, nc);
  Host& priv = private_host(d, 10, site_b);

  std::optional<Received> at_pub;
  std::optional<Received> at_priv;
  expect_on(pub, 50, at_pub);
  expect_on(priv, 40, at_priv);

  network.send(priv, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());

  // Reply to the translated endpoint goes through.
  network.send(pub, 50, at_pub->src, payload_of(2));
  sim.run();
  ASSERT_TRUE(at_priv.has_value());
  EXPECT_EQ(at_priv->payload, payload_of(2));

  // A different source port on the same public host is filtered.
  at_priv.reset();
  network.send(pub, 51, at_pub->src, payload_of(3));
  sim.run();
  EXPECT_FALSE(at_priv.has_value());
}

TEST_F(NetTest, RestrictedConeAllowsAnyPortOfKnownIp) {
  Host& pub = public_host(1, site_a);
  NatBox::Config nc;
  nc.type = NatType::kRestrictedCone;
  DomainId d = nat_domain(1, site_b, nc);
  Host& priv = private_host(d, 10, site_b);

  std::optional<Received> at_pub, at_priv;
  expect_on(pub, 50, at_pub);
  expect_on(priv, 40, at_priv);

  network.send(priv, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());

  network.send(pub, 51, at_pub->src, payload_of(2));  // different port, same IP
  sim.run();
  EXPECT_TRUE(at_priv.has_value());
}

TEST_F(NetTest, FullConeAllowsThirdParty) {
  Host& pub = public_host(1, site_a);
  Host& other = public_host(2, site_a);
  NatBox::Config nc;
  nc.type = NatType::kFullCone;
  DomainId d = nat_domain(1, site_b, nc);
  Host& priv = private_host(d, 10, site_b);

  std::optional<Received> at_pub, at_priv;
  expect_on(pub, 50, at_pub);
  expect_on(priv, 40, at_priv);

  network.send(priv, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());

  network.send(other, 99, at_pub->src, payload_of(2));
  sim.run();
  EXPECT_TRUE(at_priv.has_value());
}

TEST_F(NetTest, PortRestrictedBlocksThirdParty) {
  Host& pub = public_host(1, site_a);
  Host& other = public_host(2, site_a);
  DomainId d = nat_domain(1, site_b, {});  // default port-restricted
  Host& priv = private_host(d, 10, site_b);

  std::optional<Received> at_pub, at_priv;
  expect_on(pub, 50, at_pub);
  expect_on(priv, 40, at_priv);

  network.send(priv, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());

  network.send(other, 99, at_pub->src, payload_of(2));
  sim.run();
  EXPECT_FALSE(at_priv.has_value());
}

TEST_F(NetTest, SymmetricNatUsesPerDestinationMappings) {
  Host& pub1 = public_host(1, site_a);
  Host& pub2 = public_host(2, site_a);
  NatBox::Config nc;
  nc.type = NatType::kSymmetric;
  DomainId d = nat_domain(1, site_b, nc);
  Host& priv = private_host(d, 10, site_b);

  std::optional<Received> at1, at2;
  expect_on(pub1, 50, at1);
  expect_on(pub2, 50, at2);

  network.send(priv, 40, Endpoint{pub1.ip(), 50}, payload_of(1));
  network.send(priv, 40, Endpoint{pub2.ip(), 50}, payload_of(2));
  sim.run();
  ASSERT_TRUE(at1.has_value());
  ASSERT_TRUE(at2.has_value());
  EXPECT_NE(at1->src.port, at2->src.port);  // distinct mappings

  // pub2 cannot reach priv through pub1's mapping.
  std::optional<Received> at_priv;
  expect_on(priv, 40, at_priv);
  network.send(pub2, 50, at1->src, payload_of(3));
  sim.run();
  EXPECT_FALSE(at_priv.has_value());

  // But pub1 can.
  network.send(pub1, 50, at1->src, payload_of(4));
  sim.run();
  EXPECT_TRUE(at_priv.has_value());
}

TEST_F(NetTest, UdpHolePunchBetweenTwoPortRestrictedNats) {
  DomainId da = nat_domain(1, site_a, {});
  DomainId db = nat_domain(2, site_b, {});
  Host& a = private_host(da, 10, site_a);
  Host& b = private_host(db, 10, site_b);
  Host& rendezvous = public_host(3, site_a);

  // Both register with the rendezvous to open mappings & learn peers.
  std::optional<Received> from_a, from_b;
  rendezvous.bind(50, [&](const Endpoint& src, std::uint16_t,
                          SharedBytes payload) {
    Bytes data = payload.to_bytes();
    if (data == payload_of(1)) from_a = Received{src, data};
    if (data == payload_of(2)) from_b = Received{src, data};
  });
  network.send(a, 40, Endpoint{rendezvous.ip(), 50}, payload_of(1));
  network.send(b, 40, Endpoint{rendezvous.ip(), 50}, payload_of(2));
  sim.run();
  ASSERT_TRUE(from_a.has_value());
  ASSERT_TRUE(from_b.has_value());

  std::optional<Received> at_a, at_b;
  expect_on(a, 40, at_a);
  expect_on(b, 40, at_b);

  // First packet a->b dies at b's NAT, but opens a's mapping toward b.
  network.send(a, 40, from_b->src, payload_of(3));
  sim.run();
  EXPECT_FALSE(at_b.has_value());

  // b->a now passes (a sent to b already); subsequent a->b passes too.
  network.send(b, 40, from_a->src, payload_of(4));
  sim.run();
  EXPECT_TRUE(at_a.has_value());
  network.send(a, 40, from_b->src, payload_of(5));
  sim.run();
  EXPECT_TRUE(at_b.has_value());
}

TEST_F(NetTest, HairpinSupportedTranslatesBack) {
  Host& pub = public_host(1, site_a);
  // Full-cone + hairpin isolates the hairpin path from inbound
  // filtering (the VMware NAT of the paper's NWU nodes behaves this
  // way for hole-punched flows).
  NatBox::Config nc;
  nc.type = NatType::kFullCone;
  nc.hairpin = true;
  DomainId d = nat_domain(1, site_b, nc);
  Host& p1 = private_host(d, 10, site_b);
  Host& p2 = private_host(d, 11, site_b);

  // p2 talks to a public host so its public mapping exists.
  std::optional<Received> at_pub;
  expect_on(pub, 50, at_pub);
  network.send(p2, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());

  // p1 sends to p2's *public* mapping: the hairpin NAT loops it back
  // inside and p2 receives it.
  std::optional<Received> at_p2;
  expect_on(p2, 40, at_p2);
  network.send(p1, 40, at_pub->src, payload_of(2));
  sim.run();
  ASSERT_TRUE(at_p2.has_value());
  EXPECT_EQ(at_p2->payload, payload_of(2));
  EXPECT_EQ(network.stats().drops(Network::DropReason::kHairpin), 0u);
}

TEST_F(NetTest, HairpinUnsupportedDrops) {
  Host& pub = public_host(1, site_a);
  NatBox::Config nc;
  nc.hairpin = false;  // explicit: the UFL-style NAT
  DomainId d = nat_domain(1, site_b, nc);
  Host& p1 = private_host(d, 10, site_b);
  Host& p2 = private_host(d, 11, site_b);

  std::optional<Received> at_pub;
  expect_on(pub, 50, at_pub);
  network.send(p2, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());

  network.send(p1, 40, at_pub->src, payload_of(2));
  sim.run();
  EXPECT_EQ(network.stats().drops(Network::DropReason::kHairpin), 1u);
}

TEST_F(NetTest, SameDomainIsDirectLan) {
  DomainId d = nat_domain(1, site_a, {});
  Host& p1 = private_host(d, 10, site_a);
  Host& p2 = private_host(d, 11, site_a);
  std::optional<Received> got;
  expect_on(p2, 40, got);

  network.send(p1, 30, Endpoint{p2.ip(), 40}, payload_of(7));
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, (Endpoint{p1.ip(), 30}));  // no translation
  EXPECT_LT(sim.now(), 2 * kMillisecond);        // LAN latency
}

TEST_F(NetTest, PrivateAddressInOtherDomainUnroutable) {
  DomainId d1 = nat_domain(1, site_a, {});
  DomainId d2 = nat_domain(2, site_b, {});
  Host& p1 = private_host(d1, 10, site_a);
  Host& p2 = private_host(d2, 10, site_b);
  std::optional<Received> got;
  expect_on(p2, 40, got);

  network.send(p1, 30, Endpoint{p2.ip(), 40}, payload_of(1));
  sim.run();
  EXPECT_FALSE(got.has_value());
  EXPECT_EQ(network.stats().drops(Network::DropReason::kUnroutable), 1u);
}

TEST_F(NetTest, FirewallOpenPortFilter) {
  Host& pub = public_host(1, site_a);
  NatBox::Config nc;
  nc.type = NatType::kFullCone;
  nc.open_external_ports = {30001};
  nc.port_base = 30000;
  DomainId d = nat_domain(1, site_b, nc);
  Host& priv = private_host(d, 10, site_b);

  std::optional<Received> at_pub, at_priv;
  expect_on(pub, 50, at_pub);
  expect_on(priv, 40, at_priv);

  // First outbound gets port 30000 (closed); second flow gets 30001.
  network.send(priv, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());
  Endpoint closed = at_pub->src;
  EXPECT_EQ(closed.port, 30000);

  network.send(pub, 50, closed, payload_of(2));
  sim.run();
  EXPECT_FALSE(at_priv.has_value());  // firewall blocked despite full-cone

  network.send(priv, 41, Endpoint{pub.ip(), 50}, payload_of(3));
  sim.run();
  std::optional<Received> at_priv41;
  expect_on(priv, 41, at_priv41);
  network.send(pub, 50, Endpoint{closed.ip, 30001}, payload_of(4));
  sim.run();
  EXPECT_TRUE(at_priv41.has_value());
}

TEST_F(NetTest, NestedNatsTraverseBothLevels) {
  Host& pub = public_host(1, site_a);
  // Outer NAT on the Internet; inner NAT inside the outer domain (the
  // paper's home node sits behind VMware NAT + home router + ISP).
  DomainId outer = nat_domain(1, site_b, {});
  NatBox::Config inner_cfg;
  DomainId inner = network.add_nat_domain(
      "inner", outer, site_b, Ipv4Addr(192, 168, 1, 99), inner_cfg);
  Host& deep = network.add_host(Ipv4Addr(10, 0, 0, 5), inner, site_b,
                                Host::Config{"deep"});

  std::optional<Received> at_pub, at_deep;
  expect_on(pub, 50, at_pub);
  expect_on(deep, 40, at_deep);

  network.send(deep, 40, Endpoint{pub.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(at_pub.has_value());
  EXPECT_EQ(at_pub->src.ip, Ipv4Addr(150, 0, 0, 1));  // outer WAN ip

  network.send(pub, 50, at_pub->src, payload_of(2));
  sim.run();
  EXPECT_TRUE(at_deep.has_value());
}

TEST_F(NetTest, MoveHostDropsBindingsAndReassignsAddress) {
  DomainId d1 = nat_domain(1, site_a, {});
  DomainId d2 = nat_domain(2, site_b, {});
  Host& h = private_host(d1, 10, site_a);
  std::optional<Received> got;
  expect_on(h, 40, got);

  network.move_host(h, d2, Ipv4Addr(192, 168, 77, 10));
  EXPECT_EQ(h.domain(), d2);
  EXPECT_EQ(h.site(), site_b);
  EXPECT_EQ(h.ip(), Ipv4Addr(192, 168, 77, 10));
  EXPECT_FALSE(h.bound(40));  // bindings dropped: process must re-bind

  // Old address no longer resolves inside d1.
  Host& other = private_host(d1, 11, site_a);
  network.send(other, 30, Endpoint{Ipv4Addr(192, 168, static_cast<std::uint8_t>(d1), 10), 40},
               payload_of(1));
  sim.run();
  EXPECT_FALSE(got.has_value());
}

TEST_F(NetTest, UplinkSerializationQueues) {
  // 1 MB/s uplink: a 100 kB datagram takes 100 ms to serialize; two
  // sent back-to-back arrive ~100 ms apart.
  Host::Config slow;
  slow.name = "slow";
  slow.uplink_bps = 1e6;
  Host& a = network.add_host(Ipv4Addr(128, 9, 0, 1), Network::kInternet,
                             site_a, slow);
  Host& b = public_host(2, site_a);
  std::vector<SimTime> arrivals;
  b.bind(50, [&](const Endpoint&, std::uint16_t, SharedBytes) {
    arrivals.push_back(sim.now());
  });

  Bytes big(100000, 0xaa);
  network.send(a, 40, Endpoint{b.ip(), 50}, big);
  network.send(a, 40, Endpoint{b.ip(), 50}, big);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(to_seconds(arrivals[1] - arrivals[0]), 0.1, 0.02);
}

TEST_F(NetTest, ProcessingDelayAddsLatency) {
  Host::Config loaded;
  loaded.name = "loaded";
  loaded.proc_service = 10 * kMillisecond;
  Host& a = public_host(1, site_a);
  Host& b = network.add_host(Ipv4Addr(128, 9, 0, 2), Network::kInternet,
                             site_a, loaded);
  std::optional<Received> got;
  expect_on(b, 50, got);
  network.send(a, 40, Endpoint{b.ip(), 50}, payload_of(1));
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(sim.now(), 11 * kMillisecond);  // same-site 1ms + 10ms service
}

// Guard against the drop enum drifting from its labels and gauges: a
// new DropReason added without a to_string case would report "unknown"
// in traces and shadow another reason's metric.
TEST_F(NetTest, EveryDropReasonHasUniqueLabelAndGauge) {
  std::set<std::string> labels;
  for (std::size_t i = 0; i < Network::kDropReasonCount; ++i) {
    std::string label = to_string(static_cast<Network::DropReason>(i));
    EXPECT_NE(label, "unknown") << "DropReason " << i << " lacks a label";
    EXPECT_TRUE(labels.insert(label).second)
        << "DropReason " << i << " reuses label " << label;
  }
  std::set<std::string> gauges;
  for (const auto& s : sim.metrics().snapshot()) gauges.insert(s.name);
  for (const std::string& label : labels) {
    EXPECT_EQ(gauges.count("net_dropped_" + label), 1u)
        << "no gauge registered for net_dropped_" << label;
  }
}

}  // namespace
}  // namespace wow::net
