// Seeded chaos soak: randomized fault schedules against a multi-site
// overlay, with the invariant oracle as the pass/fail judge.  Every
// failure message carries the (seed, schedule) reproducer accepted by
// tools/chaos_runner.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/faults.h"
#include "p2p/oracle.h"
#include "test_util.h"

namespace wow {
namespace {

/// A public overlay spread over three WAN sites (4 hosts each), the
/// smallest topology where partitions and link flaps have teeth.
struct MultiSiteOverlay {
  static constexpr int kSites = 3;
  static constexpr int kPerSite = 4;

  explicit MultiSiteOverlay(std::uint64_t seed, p2p::NodeConfig base = {})
      : sim(seed), network(sim) {
    network.set_default_wan(
        net::LinkModel{30 * kMillisecond, 2 * kMillisecond, 0.002});
    for (int s = 0; s < kSites; ++s) {
      sites.push_back(network.add_site("site" + std::to_string(s)));
    }
    for (int i = 0; i < kSites * kPerSite; ++i) {
      int s = i % kSites;
      auto ip = net::Ipv4Addr(128, static_cast<std::uint8_t>(10 + s), 0,
                              static_cast<std::uint8_t>(1 + i));
      net::Host::Config hc;
      hc.name = "host" + std::to_string(i);
      auto& host =
          network.add_host(ip, net::Network::kInternet, sites[
              static_cast<std::size_t>(s)], hc);
      hosts.push_back(&host);
      p2p::NodeConfig cfg = base;
      cfg.port = 17000;
      if (i > 0) {
        cfg.bootstrap = {transport::Uri{
            transport::TransportKind::kUdp,
            net::Endpoint{hosts[0]->ip(), 17000}}};
      }
      nodes.push_back(std::make_unique<p2p::Node>(
          p2p::NodeDeps::sim(sim, network, host), cfg));
    }
    // Crash faults kill and later restart the overlay process.
    network.faults().set_crash_handler([this](net::HostId host, bool down) {
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (hosts[i]->id() != host) continue;
        auto& n = nodes[i];
        if (down && n->running()) n->stop();
        if (!down && !n->running()) n->restart();
      }
    });
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  [[nodiscard]] std::vector<p2p::Node*> live() const {
    std::vector<p2p::Node*> out;
    for (const auto& n : nodes) {
      if (n->running()) out.push_back(n.get());
    }
    return out;
  }

  sim::Simulator sim;
  net::Network network;
  std::vector<net::SiteId> sites;
  /// Physical hosts, parallel to `nodes` (the node no longer exposes
  /// its host — the transport seam hides the simulated network).
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<p2p::Node>> nodes;
};

net::FaultPlan::RandomParams soak_params(const MultiSiteOverlay& net) {
  net::FaultPlan::RandomParams params;
  params.events = 10;
  params.start = 3 * kMinute;  // let the ring form first
  params.horizon = 10 * kMinute;
  params.sites = net.sites;
  // Only the back half of the fleet may freeze or crash: node 0 is the
  // bootstrap every restarted node rejoins through.
  for (std::size_t i = net.nodes.size() / 2; i < net.nodes.size(); ++i) {
    params.hosts.push_back(net.hosts[i]->id());
  }
  return params;
}

TEST(FaultPlan, SeededGenerationIsDeterministic) {
  net::FaultPlan::RandomParams params;
  params.sites = {0, 1, 2};
  params.nat_domains = {1};
  params.hosts = {3, 4, 5};
  auto a = net::FaultPlan::random(97, params);
  auto b = net::FaultPlan::random(97, params);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_EQ(a.events.size(), static_cast<std::size_t>(params.events));
  auto c = net::FaultPlan::random(98, params);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(FaultPlan, DescribeParseRoundTrip) {
  net::FaultPlan::RandomParams params;
  params.sites = {0, 1, 2, 3};
  params.nat_domains = {1, 2};
  params.hosts = {0, 1, 2, 3, 4};
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    auto plan = net::FaultPlan::random(seed, params);
    auto parsed = net::FaultPlan::parse(plan.describe());
    ASSERT_TRUE(parsed.has_value()) << plan.describe();
    EXPECT_EQ(parsed->describe(), plan.describe());
  }
}

TEST(FaultPlan, ParseRejectsMalformedSchedules) {
  EXPECT_FALSE(net::FaultPlan::parse("bogus@100").has_value());
  EXPECT_FALSE(net::FaultPlan::parse("part@").has_value());
  EXPECT_FALSE(net::FaultPlan::parse("part@100+20").has_value());  // no sites
  EXPECT_FALSE(net::FaultPlan::parse("flap@100+20:1").has_value());
  EXPECT_FALSE(net::FaultPlan::parse("storm@100+20:50").has_value());
  EXPECT_FALSE(net::FaultPlan::parse("dup@100+20:nan").has_value());
  EXPECT_FALSE(net::FaultPlan::parse(";;").has_value());
  // And the empty plan is valid (vacuously healthy).
  auto empty = net::FaultPlan::parse("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->events.empty());
}

/// A WAN partition shorter than the keepalive grace: connections ride it
/// out or are repaired; either way the oracle must be green again after
/// the heal window.
TEST(Chaos, PartitionHealsAndOracleConverges) {
  MultiSiteOverlay net(11);
  net.start_all();
  net.sim.run_until(3 * kMinute);

  net::FaultSpec part;
  part.kind = net::FaultKind::kPartition;
  part.at = net.sim.now();
  part.duration = kMinute;
  part.sites = {net.sites[0]};  // site 0 vs the rest
  net.network.faults().inject(part);
  EXPECT_EQ(net.network.faults().active_faults(), 1u);
  EXPECT_TRUE(net.network.faults().partitioned(net.sites[0], net.sites[1]));
  EXPECT_FALSE(net.network.faults().partitioned(net.sites[1], net.sites[2]));

  net.sim.run_for(kMinute + kSecond);  // heal
  EXPECT_EQ(net.network.faults().active_faults(), 0u);
  // Keepalives crossed the cut while it was up, so drops were recorded.
  EXPECT_GT(net.network.stats().drops(
                net::Network::DropReason::kPartition), 0u);
  net.sim.run_for(4 * kMinute);  // repair window

  auto report = p2p::Oracle::check(net.live(), net.sim.now(), {.seed = 11});
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_GT(net.network.faults().stats().faults_healed, 0u);
}

/// Satellite: datagram duplication must be protocol-invisible — no
/// double connections from replayed handshakes, no teardown from
/// replayed keepalives, ring intact afterwards.
TEST(Chaos, DuplicateDeliveryIsTolerated) {
  testing::PublicOverlay net(8, /*seed=*/21);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  ASSERT_EQ(net.routable_count(), 8);

  std::uint64_t lost_before = 0;
  for (const auto& n : net.nodes) lost_before += n->stats().connections_lost;

  net::FaultSpec dup;
  dup.kind = net::FaultKind::kDuplicate;
  dup.at = net.sim.now();
  dup.duration = 3 * kMinute;
  dup.rate = 0.5;
  net.network.faults().inject(dup);

  for (int burst = 0; burst < 9; ++burst) {
    for (std::size_t i = 0; i < net.nodes.size(); ++i) {
      std::size_t peer = (i + 1 + static_cast<std::size_t>(burst)) %
                         net.nodes.size();
      net.nodes[i]->send_data(net.nodes[peer]->address(), Bytes{42});
    }
    net.sim.run_for(20 * kSecond);
  }
  net.sim.run_for(kMinute);

  EXPECT_GT(net.network.faults().stats().duplicated, 0u);
  EXPECT_EQ(net.routable_count(), 8);

  // No spurious teardown: replayed pings/CTMs/link frames never look
  // like failures.
  std::uint64_t lost_after = 0;
  for (const auto& n : net.nodes) lost_after += n->stats().connections_lost;
  EXPECT_EQ(lost_after, lost_before);

  // No double-connect: at most one connection per (peer, type).
  for (const auto& n : net.nodes) {
    std::set<std::string> seen;
    bool duplicate_entry = false;
    n->connections().for_each([&](const p2p::Connection& c) {
      duplicate_entry = duplicate_entry ||
          !seen.insert(c.addr.to_hex() + "/" + p2p::to_string(c.type)).second;
    });
    EXPECT_FALSE(duplicate_entry);
  }

  std::vector<p2p::Node*> live;
  for (const auto& n : net.nodes) live.push_back(n.get());
  auto report = p2p::Oracle::check(live, net.sim.now(), {.seed = 21});
  EXPECT_TRUE(report.ok) << report.to_string();
}

/// The oracle must catch a deliberately broken failure detector: with
/// keepalive effectively disabled, a crashed node's neighbors keep
/// routing at its corpse and the ring never heals.
TEST(Chaos, OracleCatchesBrokenKeepalive) {
  p2p::NodeConfig broken;
  broken.ping_interval = 10 * kMinute;  // failure detection disabled
  testing::PublicOverlay net(8, /*seed=*/31, broken);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  ASSERT_EQ(net.routable_count(), 8);

  net.nodes[3]->stop();  // kill -9, no Close frames
  net.sim.run_for(3 * kMinute);

  std::vector<p2p::Node*> live;
  for (const auto& n : net.nodes) {
    if (n->running()) live.push_back(n.get());
  }
  auto report = p2p::Oracle::check(live, net.sim.now(), {.seed = 31});
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.to_string().find("VIOLATION"), std::string::npos);
  EXPECT_NE(report.to_string().find("seed=31"), std::string::npos);
}

/// ...and the control: with the stock keepalive the same crash heals
/// within the same window, so the broken-build signal is the oracle,
/// not the scenario.
TEST(Chaos, HealthyKeepaliveRepairsSameCrash) {
  testing::PublicOverlay net(8, /*seed=*/31);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  ASSERT_EQ(net.routable_count(), 8);

  net.nodes[3]->stop();
  // Detection alone costs a ping cycle (~75 s); give repair several more.
  net.sim.run_for(6 * kMinute);

  std::vector<p2p::Node*> live;
  for (const auto& n : net.nodes) {
    if (n->running()) live.push_back(n.get());
  }
  auto report = p2p::Oracle::check(live, net.sim.now(), {.seed = 31});
  EXPECT_TRUE(report.ok) << report.to_string();
}

/// The soak proper: a seeded random schedule of partitions, flaps,
/// storms, duplication, reordering, corruption, freezes and crashes,
/// interleaved with steady traffic.  After the last window heals the
/// oracle must pass; a failure prints the chaos_runner reproducer.
TEST(Chaos, SeededSoakConvergesAfterHeal) {
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    MultiSiteOverlay net(seed);
    auto plan = net::FaultPlan::random(seed, soak_params(net));
    const std::string reproducer =
        "reproduce: chaos_runner --seed=" + std::to_string(seed) +
        " --schedule=\"" + plan.describe() + "\"";

    net.start_all();
    net.sim.run_until(3 * kMinute);
    net.network.faults().schedule(plan);

    // Steady background traffic across the fault horizon.
    for (int burst = 0; burst < 24; ++burst) {
      auto live = net.live();
      for (std::size_t i = 0; i + 1 < live.size(); i += 2) {
        live[i]->send_data(live[i + 1]->address(), Bytes{7, 7});
      }
      net.sim.run_for(20 * kSecond);
    }

    ASSERT_EQ(net.network.faults().active_faults(), 0u) << reproducer;
    EXPECT_GT(net.network.faults().stats().faults_begun, 0u);
    EXPECT_EQ(net.network.faults().stats().faults_begun,
              net.network.faults().stats().faults_healed +
                  /*instantaneous NAT reboots*/ 0u +
                  net.network.faults().active_faults())
        << reproducer;

    net.sim.run_for(5 * kMinute);  // repair window

    auto live = net.live();
    EXPECT_EQ(live.size(), net.nodes.size()) << reproducer;
    auto report = p2p::Oracle::check(live, net.sim.now(), {.seed = seed});
    EXPECT_TRUE(report.ok) << report.to_string() << "\n  " << reproducer;
  }
}

}  // namespace
}  // namespace wow
