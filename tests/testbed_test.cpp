#include <gtest/gtest.h>

#include "apps/ping.h"
#include "middleware/nfs.h"
#include "middleware/pbs.h"
#include "wow/testbed.h"

namespace wow {
namespace {

class TestbedTest : public ::testing::Test {
 protected:
  TestbedTest() {
    TestbedConfig cfg;
    cfg.seed = 42;
    // Keep the bootstrap overlay small for unit-test speed; full scale
    // (118 routers / 20 hosts) is exercised by the benches.
    cfg.planetlab_routers = 30;
    cfg.planetlab_hosts = 10;
    sim = std::make_unique<sim::Simulator>(cfg.seed);
    bed = std::make_unique<Testbed>(*sim, cfg);
  }

  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<Testbed> bed;
};

TEST_F(TestbedTest, AllComputeNodesBecomeRoutable) {
  bed->start_all();
  // UFL-UFL near links can need a couple of ~160 s public-URI timeouts
  // (the paper's footnote-2 linking behaviour) before the private URI
  // connects, so allow a generous convergence window.
  sim->run_for(10 * kMinute);
  EXPECT_EQ(bed->routable_compute_nodes(), 33);
}

TEST_F(TestbedTest, CrossDomainPingWorks) {
  bed->start_all();
  sim->run_for(5 * kMinute);

  // UFL node 2 pings NWU node 17 across two NATs.
  auto& a = bed->node(2);
  auto& b = bed->node(17);
  int replies = 0;
  a.icmp->set_reply_handler([&](net::Ipv4Addr from, std::uint16_t,
                                std::uint16_t, SimDuration) {
    if (from == b.vip()) ++replies;
  });
  for (int i = 1; i <= 5; ++i) {
    a.icmp->ping(b.vip(), 7, static_cast<std::uint16_t>(i));
    sim->run_for(kSecond);
  }
  sim->run_for(5 * kSecond);
  EXPECT_GE(replies, 4);  // WAN loss may eat one
}

TEST_F(TestbedTest, FirewalledAndNestedNatNodesAreReachable) {
  bed->start_all();
  sim->run_for(8 * kMinute);

  auto& a = bed->node(3);
  int got32 = 0, got34 = 0;
  a.icmp->set_reply_handler([&](net::Ipv4Addr from, std::uint16_t,
                                std::uint16_t, SimDuration) {
    if (from == bed->node(32).vip()) ++got32;  // ncgrid firewall
    if (from == bed->node(34).vip()) ++got34;  // triple-NAT home node
  });
  for (int i = 1; i <= 5; ++i) {
    a.icmp->ping(bed->node(32).vip(), 1, static_cast<std::uint16_t>(i));
    a.icmp->ping(bed->node(34).vip(), 2, static_cast<std::uint16_t>(i));
    sim->run_for(kSecond);
  }
  sim->run_for(10 * kSecond);
  EXPECT_GE(got32, 3);
  EXPECT_GE(got34, 3);
}

TEST_F(TestbedTest, SustainedTrafficCreatesShortcutAndCutsLatency) {
  bed->start_all();
  sim->run_for(5 * kMinute);

  // Pick a UFL/NWU pair with no pre-existing direct connection so the
  // latency transition is observable.
  Testbed::ComputeNode* a = nullptr;
  Testbed::ComputeNode* b = nullptr;
  for (int i = 2; i <= 16 && a == nullptr; ++i) {
    for (int j = 17; j <= 29; ++j) {
      auto& x = bed->node(i);
      auto& y = bed->node(j);
      if (!x.ipop->p2p().has_direct(y.ipop->p2p().address()) &&
          !y.ipop->p2p().has_direct(x.ipop->p2p().address())) {
        a = &x;
        b = &y;
        break;
      }
    }
  }
  ASSERT_NE(a, nullptr) << "every UFL/NWU pair already connected";

  std::vector<double> rtts_ms;
  a->icmp->set_reply_handler([&](net::Ipv4Addr from, std::uint16_t,
                                 std::uint16_t, SimDuration rtt) {
    if (from == b->vip()) rtts_ms.push_back(to_millis(rtt));
  });
  for (int i = 1; i <= 120; ++i) {
    a->icmp->ping(b->vip(), 3, static_cast<std::uint16_t>(i));
    sim->run_for(kSecond);
  }
  sim->run_for(5 * kSecond);
  ASSERT_GT(rtts_ms.size(), 60u);

  // A shortcut must exist by the end and late RTTs must sit at the
  // direct-path level.  (The early-RTT multi-hop penalty needs the
  // full-scale router population and is asserted by the Fig. 4 bench,
  // not this scaled-down fixture, where an intermediate hop may land on
  // an unloaded same-site node.)
  EXPECT_TRUE(a->ipop->p2p().has_direct(b->ipop->p2p().address()));
  double early = rtts_ms[1];
  double late = rtts_ms[rtts_ms.size() - 5];
  EXPECT_LT(late, 45.0) << "direct path should be ~38 ms";
  EXPECT_GE(early + 2.0, late) << "latency must not get worse over time";
}

TEST_F(TestbedTest, ShortcutsDisabledKeepsMultiHopLatency) {
  TestbedConfig cfg;
  cfg.seed = 43;
  cfg.planetlab_routers = 30;
  cfg.planetlab_hosts = 10;
  cfg.shortcuts_enabled = false;
  sim::Simulator sim2(cfg.seed);
  Testbed bed2(sim2, cfg);
  bed2.start_all();
  sim2.run_for(5 * kMinute);

  // Probe several UFL/NWU pairs without coincidental ring connections:
  // individual multi-hop paths can be short (one fast same-site
  // intermediate), but no pair may acquire a direct link and at least
  // some pairs must pay the loaded-router latency.
  struct Probe {
    Testbed::ComputeNode* a;
    Testbed::ComputeNode* b;
    std::vector<double> rtts;
  };
  std::vector<Probe> probes;
  for (int i = 2; i <= 16 && probes.size() < 4; ++i) {
    auto& x = bed2.node(i);
    auto& y = bed2.node(17 + static_cast<int>(probes.size()));
    if (!x.ipop->p2p().has_direct(y.ipop->p2p().address()) &&
        !y.ipop->p2p().has_direct(x.ipop->p2p().address())) {
      probes.push_back(Probe{&x, &y, {}});
    }
  }
  ASSERT_GE(probes.size(), 2u);
  for (auto& p : probes) {
    auto* rtts = &p.rtts;
    p.a->icmp->set_reply_handler([rtts](net::Ipv4Addr, std::uint16_t,
                                        std::uint16_t, SimDuration rtt) {
      rtts->push_back(to_millis(rtt));
    });
  }
  for (int i = 1; i <= 60; ++i) {
    for (auto& p : probes) {
      p.a->icmp->ping(p.b->vip(), 3, static_cast<std::uint16_t>(i));
    }
    sim2.run_for(kSecond);
  }
  sim2.run_for(5 * kSecond);
  double max_late = 0.0;
  for (auto& p : probes) {
    EXPECT_FALSE(p.a->ipop->p2p().has_direct(p.b->ipop->p2p().address()));
    ASSERT_GT(p.rtts.size(), 20u);
    max_late = std::max(max_late, p.rtts[p.rtts.size() - 5]);
  }
  EXPECT_GT(max_late, 45.0) << "without shortcuts latency stays multi-hop";
}

TEST_F(TestbedTest, MigrationPreservesVirtualIpConnectivity) {
  bed->start_all();
  // NATed near links can take several minutes of race/retry cycles;
  // probe the ring only once it has settled.
  sim->run_for(10 * kMinute);

  auto& mover = bed->node(3);   // starts at UFL
  auto& peer = bed->node(18);   // NWU observer
  net::Ipv4Addr vip = mover.vip();

  int replies = 0;
  peer.icmp->set_reply_handler([&](net::Ipv4Addr from, std::uint16_t,
                                   std::uint16_t, SimDuration) {
    if (from == vip) ++replies;
  });
  for (int i = 1; i <= 5 && replies == 0; ++i) {
    peer.icmp->ping(vip, 1, static_cast<std::uint16_t>(i));
    sim->run_for(5 * kSecond);
  }
  ASSERT_GE(replies, 1);

  bed->migrate(mover, /*to_ufl=*/false, 30 * kSecond, 0.83);
  sim->run_for(3 * kMinute);  // rejoin

  replies = 0;
  for (int i = 2; i <= 6; ++i) {
    peer.icmp->ping(vip, 1, static_cast<std::uint16_t>(i));
    sim->run_for(2 * kSecond);
  }
  sim->run_for(5 * kSecond);
  EXPECT_GE(replies, 3) << "virtual IP must survive migration";
  EXPECT_EQ(mover.vip(), vip);
}

TEST_F(TestbedTest, PbsMemeSmokeRun) {
  bed->start_all();
  sim->run_for(5 * kMinute);

  auto& head = bed->node(2);
  mw::NfsServer nfs(*sim, *head.tcp);
  mw::PbsServer pbs(*sim, *head.tcp, nfs);

  std::vector<std::unique_ptr<mw::PbsWorker>> workers;
  for (int i = 3; i <= 8; ++i) {
    auto& n = bed->node(i);
    workers.push_back(std::make_unique<mw::PbsWorker>(
        *sim, *n.tcp, *n.cpu, head.vip(), n.name));
    workers.back()->start();
  }
  sim->run_for(30 * kSecond);
  ASSERT_EQ(pbs.registered_workers(), 6u);

  for (std::uint64_t j = 0; j < 30; ++j) {
    sim->schedule(static_cast<SimDuration>(j) * kSecond, [&pbs, j] {
      mw::JobSpec spec;
      spec.id = j;
      spec.work_seconds = 5.0;
      spec.input_bytes = 200 * 1024;
      spec.output_bytes = 100 * 1024;
      pbs.qsub(spec);
    });
  }
  sim->run_for(10 * kMinute);
  EXPECT_EQ(pbs.completed().size(), 30u);
  for (const auto& record : pbs.completed()) {
    EXPECT_GT(record.wall_seconds(), 4.9);
    EXPECT_LT(record.wall_seconds(), 60.0);
  }
}

}  // namespace
}  // namespace wow
