// Adaptive self-healing layer: RTT-driven timers, flap quarantine, and
// relay fallback for un-linkable pairs.  Every scenario runs real nodes
// over the simulated fabric; the invariant oracle is the judge where a
// whole-ring claim is made.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/faults.h"
#include "p2p/oracle.h"
#include "test_util.h"

namespace wow {
namespace {

/// Three WAN sites, four hosts each — the smallest topology where one
/// site-pair path going dark leaves ring neighbors mutually unreachable
/// while a mutual neighbor at the third site can still relay for them.
struct TriSiteOverlay {
  static constexpr int kSites = 3;
  static constexpr int kPerSite = 4;

  explicit TriSiteOverlay(std::uint64_t seed, p2p::NodeConfig base = {})
      : sim(seed), network(sim) {
    network.set_default_wan(
        net::LinkModel{30 * kMillisecond, 2 * kMillisecond, 0.002});
    for (int s = 0; s < kSites; ++s) {
      sites.push_back(network.add_site("site" + std::to_string(s)));
    }
    for (int i = 0; i < kSites * kPerSite; ++i) {
      int s = i % kSites;
      auto ip = net::Ipv4Addr(128, static_cast<std::uint8_t>(20 + s), 0,
                              static_cast<std::uint8_t>(1 + i));
      net::Host::Config hc;
      hc.name = "host" + std::to_string(i);
      auto& host = network.add_host(
          ip, net::Network::kInternet, sites[static_cast<std::size_t>(s)],
          hc);
      hosts.push_back(&host);
      p2p::NodeConfig cfg = base;
      cfg.port = 17000;
      if (i > 0) {
        cfg.bootstrap = {transport::Uri{
            transport::TransportKind::kUdp,
            net::Endpoint{hosts[0]->ip(), 17000}}};
      }
      nodes.push_back(std::make_unique<p2p::Node>(
          p2p::NodeDeps::sim(sim, network, host), cfg));
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }

  [[nodiscard]] std::vector<p2p::Node*> live() const {
    std::vector<p2p::Node*> out;
    for (const auto& n : nodes) {
      if (n->running()) out.push_back(n.get());
    }
    return out;
  }

  [[nodiscard]] std::uint64_t sum_stat(
      std::uint64_t p2p::Node::Stats::*field) const {
    std::uint64_t total = 0;
    for (const auto& n : nodes) total += n->stats().*field;
    return total;
  }

  sim::Simulator sim;
  net::Network network;
  std::vector<net::SiteId> sites;
  /// Physical hosts, parallel to `nodes`.
  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<p2p::Node>> nodes;
};

// ------------------------------------------------------------ RTT timers

TEST(Adaptive, KeepalivePingsFeedPerPeerEstimator) {
  // A deliberately quiet overlay: no far links, slow stabilization.  In
  // a chatty mesh the routed traffic itself proves liveness and probes
  // never fire; only an idle connection exercises the ping path — and
  // the bootstrap node, which never links actively, gets its very first
  // RTT samples from those pongs.
  p2p::NodeConfig base;
  base.far_target = 0;
  base.stabilize_period = 2 * kMinute;
  // Probe threshold below the 5 s joining-CTM cadence, so even pairs
  // kept warm by an unsettled neighbor's announcements go idle.
  base.ping_interval = 3 * kSecond;
  testing::PublicOverlay net(4, /*seed=*/31, base);
  net.start_all();
  net.sim.run_until(6 * kMinute);
  for (const auto& n : net.nodes) {
    // Ring formed (routable() itself can be unachievable on tiny rings
    // when both true neighbors land in one ring half).
    ASSERT_GE(n->connections().size(), 2u);
    EXPECT_GT(n->stats().pings_sent, 0u) << n->address().brief();
    EXPECT_GT(n->stats().rtt_samples, 0u) << n->address().brief();
    bool any_srtt = false;
    n->connections().for_each([&](const p2p::Connection& c) {
      if (n->srtt_of(c.addr) > 0) any_srtt = true;
    });
    EXPECT_TRUE(any_srtt) << n->address().brief();
  }
}

/// Satellite regression: the per-peer ping bookkeeping must be bounded
/// by the connection table — entries for answered probes and for dropped
/// peers are erased, never accumulated (the old `ping_outstanding_` map
/// leaked an entry per peer that ever went idle).
TEST(Adaptive, PingStateMapStaysBoundedThroughChurn) {
  testing::PublicOverlay net(5, /*seed=*/17);
  net.start_all();
  net.sim.run_until(3 * kMinute);

  for (int cycle = 0; cycle < 2; ++cycle) {
    net.nodes[4]->stop();
    net.sim.run_for(2 * kMinute);  // peers detect and drop
    net.nodes[4]->restart();
    net.sim.run_for(kMinute);
  }
  p2p::Address fourth = net.nodes[4]->address();
  for (const auto& n : net.nodes) {
    if (!n->running()) continue;
    EXPECT_LE(n->ping_state_count(), n->connections().size())
        << n->address().brief();
  }
  // And specifically: nobody retains probe state for a peer they
  // dropped while it was down.
  net.nodes[4]->stop();
  net.sim.run_for(2 * kMinute);
  for (const auto& n : net.nodes) {
    if (!n->running()) continue;
    EXPECT_FALSE(n->connections().contains(fourth));
    EXPECT_LE(n->ping_state_count(), n->connections().size());
  }
}

/// Measures how long the fleet takes to fully forget an abruptly killed
/// node; the adaptive run must beat the fixed-timer run.  The latencies
/// feed the EXPERIMENTS.md repair-latency table.
SimDuration detection_latency(bool adaptive) {
  p2p::NodeConfig base;
  base.adaptive_timers = adaptive;
  testing::PublicOverlay net(5, /*seed=*/9, base);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  p2p::Address dead = net.nodes[4]->address();
  SimTime t0 = net.sim.now();
  net.nodes[4]->stop();
  while (net.sim.now() - t0 < 10 * kMinute) {
    net.sim.run_for(kSecond);
    bool anyone = false;
    for (int i = 0; i < 4; ++i) {
      if (net.nodes[static_cast<std::size_t>(i)]->connections().contains(
              dead)) {
        anyone = true;
      }
    }
    if (!anyone) {
      // Every loss must be accounted for in the per-cause breakdown.
      for (int i = 0; i < 4; ++i) {
        const auto& st = net.nodes[static_cast<std::size_t>(i)]->stats();
        std::uint64_t by_cause = 0;
        for (std::uint64_t v : st.lost_by_cause) by_cause += v;
        EXPECT_EQ(by_cause, st.connections_lost);
      }
      return net.sim.now() - t0;
    }
  }
  return 10 * kMinute;
}

TEST(Adaptive, DetectsDeadPeerFasterThanFixedTimers) {
  SimDuration adaptive = detection_latency(true);
  SimDuration fixed = detection_latency(false);
  RecordProperty("adaptive_detect_s", static_cast<int>(to_seconds(adaptive)));
  RecordProperty("fixed_detect_s", static_cast<int>(to_seconds(fixed)));
  printf("detection latency: adaptive=%llds fixed=%llds\n",
         static_cast<long long>(to_seconds(adaptive)),
         static_cast<long long>(to_seconds(fixed)));
  EXPECT_GT(adaptive, 0);
  EXPECT_LT(adaptive, fixed);
}

// ------------------------------------------------------------ quarantine

TEST(Adaptive, RepeatedFlapsQuarantineThenForgive) {
  testing::PublicOverlay net(4, /*seed=*/13);
  net.start_all();
  net.sim.run_until(3 * kMinute);

  p2p::Address flappy = net.nodes[3]->address();
  // The base quarantine (15 s) can begin and lapse while we wait for
  // slower peers to notice a death, so sample it continuously.
  bool saw_active_quarantine = false;
  auto holders = [&] {
    int c = 0;
    for (int i = 0; i < 3; ++i) {
      const auto& n = *net.nodes[static_cast<std::size_t>(i)];
      if (n.connections().contains(flappy)) ++c;
      if (n.is_quarantined(flappy)) saw_active_quarantine = true;
    }
    return c;
  };
  auto run_until_holders = [&](int want_at_least, bool none) {
    for (int s = 0; s < 180; ++s) {
      if (none ? holders() == 0 : holders() >= want_at_least) return true;
      net.sim.run_for(kSecond);
    }
    return false;
  };

  // The first death ends a long-lived connection: not a flap.
  net.nodes[3]->stop();
  ASSERT_TRUE(run_until_holders(0, /*none=*/true));
  // Three short-lived episodes inside the flap window: reconnect, then
  // die again before the connection is old enough to prove itself.
  for (int cycle = 0; cycle < 3; ++cycle) {
    net.nodes[3]->restart();
    ASSERT_TRUE(run_until_holders(1, /*none=*/false)) << "cycle " << cycle;
    net.nodes[3]->stop();
    ASSERT_TRUE(run_until_holders(0, /*none=*/true)) << "cycle " << cycle;
  }

  std::uint64_t quarantines = 0;
  bool any_episode = false;
  for (int i = 0; i < 3; ++i) {
    const auto& n = *net.nodes[static_cast<std::size_t>(i)];
    quarantines += n.stats().quarantines;
    if (n.quarantine_until(flappy) > 0) any_episode = true;
  }
  EXPECT_GT(quarantines, 0u);
  EXPECT_TRUE(any_episode);
  EXPECT_TRUE(saw_active_quarantine);

  // Quarantine suppresses re-attempts but never bars the peer from
  // linking back in; once it lapses and the node behaves, it is
  // forgiven and rejoins.
  net.nodes[3]->restart();
  net.sim.run_for(4 * kMinute);
  EXPECT_GE(holders(), 1);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(
        net.nodes[static_cast<std::size_t>(i)]->is_quarantined(flappy));
  }
}

// ------------------------------------------------------------ CTM sweep

/// Satellite: pending Connect-To-Me requests are retried on the adaptive
/// timeout and swept once the budget is spent — the map stays bounded no
/// matter how lossy the WAN gets.
TEST(Adaptive, PendingCtmsRetriedAndSweptUnderStorm) {
  TriSiteOverlay net(29);
  net.start_all();
  net.sim.run_until(30 * kSecond);

  net::FaultSpec storm;
  storm.kind = net::FaultKind::kStorm;
  storm.at = net.sim.now();
  storm.duration = 3 * kMinute;
  storm.rate = 0.35;
  storm.magnitude = 80 * kMillisecond;
  net.network.faults().inject(storm);
  net.sim.run_for(3 * kMinute + kSecond);

  // Lossy joining must have forced at least one CTM retransmission.
  EXPECT_GT(net.sum_stat(&p2p::Node::Stats::ctm_retries), 0u);

  // After the storm plus the maximum CTM timeout, the pending maps have
  // drained to (at most) whatever the steady-state overlords keep in
  // flight.
  net.sim.run_for(4 * kMinute);
  for (const auto& n : net.nodes) {
    EXPECT_LE(n->pending_ctm_count(), 4u) << n->address().brief();
  }
  auto report =
      p2p::Oracle::check(net.live(), net.sim.now(), {.seed = 29});
  EXPECT_TRUE(report.ok) << report.to_string();
}

// ------------------------------------------------------------ relays

/// Tentpole acceptance: a site-pair path goes dark, leaving ring
/// neighbors split across it mutually unreachable.  Relay tunnels
/// through a mutual neighbor must keep every node routable, and once
/// the path heals the periodic probes must upgrade every tunnel back to
/// a direct connection.
TEST(Adaptive, RelayBridgesUnlinkablePairThenUpgradesOnHeal) {
  TriSiteOverlay net(11);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  for (p2p::Node* n : net.live()) EXPECT_TRUE(n->routable());

  net::FaultSpec flap;
  flap.kind = net::FaultKind::kLinkFlap;
  flap.at = net.sim.now();
  flap.duration = 4 * kMinute;
  flap.sites = {net.sites[0], net.sites[1]};
  net.network.faults().inject(flap);

  net.sim.run_for(3 * kMinute);  // detection + relay establishment
  EXPECT_GT(net.sum_stat(&p2p::Node::Stats::relays_established), 0u);
  EXPECT_GT(net.sum_stat(&p2p::Node::Stats::relay_forwarded), 0u);
  std::size_t tunnels = 0;
  for (const auto& n : net.nodes) {
    n->connections().for_each([&](const p2p::Connection& c) {
      if (c.is_relay()) ++tunnels;
    });
    EXPECT_TRUE(n->routable()) << n->address().brief();
  }
  EXPECT_GT(tunnels, 0u);
  // Mid-flap the full oracle must hold: relays count as near coverage,
  // greedy routing works through them, and every tunnel's agent is live
  // and able to forward.
  auto mid = p2p::Oracle::check(net.live(), net.sim.now(), {.seed = 11});
  EXPECT_TRUE(mid.ok) << mid.to_string();

  // Heal, then give the upgrade probes time to land.
  net.sim.run_for(kMinute + kSecond);  // flap ends
  net.sim.run_for(3 * kMinute);
  EXPECT_GT(net.sum_stat(&p2p::Node::Stats::relays_upgraded), 0u);
  for (const auto& n : net.nodes) {
    n->connections().for_each([&](const p2p::Connection& c) {
      EXPECT_FALSE(c.is_relay())
          << n->address().brief() << " still tunnels to " << c.addr.brief();
    });
  }
  auto report =
      p2p::Oracle::check(net.live(), net.sim.now(), {.seed = 11});
  EXPECT_TRUE(report.ok) << report.to_string();
}

// ----------------------------------------------------- cause breakdown

TEST(DisconnectCause, EnumDriftIsCaught) {
  constexpr auto kCount =
      static_cast<std::size_t>(p2p::DisconnectCause::kCount);
  std::set<std::string> names;
  for (std::size_t i = 0; i < kCount; ++i) {
    const char* s = to_string(static_cast<p2p::DisconnectCause>(i));
    ASSERT_NE(s, nullptr) << i;
    EXPECT_STRNE(s, "") << i;
    names.insert(s);
  }
  // Every cause has a distinct label (a new enumerator without a
  // to_string arm would collide or crash here).
  EXPECT_EQ(names.size(), kCount);
  p2p::Node::Stats stats;
  EXPECT_EQ(stats.lost_by_cause.size(), kCount);
}

/// Satellite (node-level): two nodes bootstrapping at each other under
/// 30% loss — simultaneous initiators — must converge to exactly one
/// connection per side, never zero, never a duplicate pair.
TEST(Adaptive, MutualBootstrapUnderLossConvergesToOneConnection) {
  sim::Simulator sim(41);
  net::Network network(sim);
  auto site = network.add_site("s");
  network.set_same_site(
      net::LinkModel{5 * kMillisecond, kMillisecond, 0.30});
  auto& ha = network.add_host(net::Ipv4Addr(128, 7, 0, 1),
                              net::Network::kInternet, site, {});
  auto& hb = network.add_host(net::Ipv4Addr(128, 7, 0, 2),
                              net::Network::kInternet, site, {});
  p2p::NodeConfig ca, cb;
  ca.port = cb.port = 17000;
  ca.bootstrap = {transport::Uri{transport::TransportKind::kUdp,
                                 net::Endpoint{hb.ip(), 17000}}};
  cb.bootstrap = {transport::Uri{transport::TransportKind::kUdp,
                                 net::Endpoint{ha.ip(), 17000}}};
  p2p::Node a(p2p::NodeDeps::sim(sim, network, ha), ca);
  p2p::Node b(p2p::NodeDeps::sim(sim, network, hb), cb);
  a.start();
  b.start();
  sim.run_for(5 * kMinute);

  ASSERT_EQ(a.connections().size(), 1u);
  ASSERT_EQ(b.connections().size(), 1u);
  EXPECT_TRUE(a.connections().contains(b.address()));
  EXPECT_TRUE(b.connections().contains(a.address()));
  EXPECT_FALSE(a.connections().find(b.address())->is_relay());
  EXPECT_FALSE(b.connections().find(a.address())->is_relay());
}

}  // namespace
}  // namespace wow
