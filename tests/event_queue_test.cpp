// Stress and invariant tests for the simulator's indexed-heap event
// queue: O(1) cancellation, generation-checked handle reuse, FIFO
// tie-breaks under churn, and the tombstone compaction bound.  The
// basic scheduling semantics live in sim_test.cpp; these tests target
// the slot-arena machinery specifically.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace wow::sim {
namespace {

TEST(EventQueue, StaleHandleAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  auto a = sim.schedule(kSecond, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // The slot is recycled by the next schedule; the old handle carries
  // the old generation and must not cancel the new occupant.
  bool second_fired = false;
  sim.schedule(kSecond, [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(a));
  sim.run();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueue, StaleHandleAfterCancelAndReuseIsNoop) {
  Simulator sim;
  auto a = sim.schedule(kSecond, [] {});
  EXPECT_TRUE(sim.cancel(a));
  sim.run();  // drains the tombstone, freeing the slot
  bool fired = false;
  sim.schedule(kSecond, [&] { fired = true; });
  EXPECT_FALSE(sim.cancel(a));  // stale generation: no-op
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, SameTimestampFifoSurvivesInterleavedCancels) {
  Simulator sim;
  std::vector<int> order;
  std::vector<TimerHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule(kSecond, [&order, i] {
      order.push_back(i);
    }));
  }
  // Cancel every third event; the survivors must still fire in their
  // original scheduling order.
  std::vector<int> expected;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(sim.cancel(handles[static_cast<std::size_t>(i)]));
    } else {
      expected.push_back(i);
    }
  }
  sim.run();
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, CancelRescheduleStressMatchesReferenceModel) {
  // Deterministic churn: schedule, cancel, and fire against a reference
  // (multimap keyed by (when, seq)) and require identical fire order.
  Simulator sim;
  Rng rng(20260805);
  std::vector<std::uint64_t> fired;
  std::map<std::pair<SimTime, int>, int> model;  // (when, order) -> id
  std::vector<std::pair<TimerHandle, std::pair<SimTime, int>>> live;
  int next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    double p = rng.uniform01();
    if (p < 0.65 || live.empty()) {
      SimTime when = sim.now() + static_cast<SimTime>(rng.uniform(1, 50));
      int id = next_id++;
      auto h = sim.schedule(when - sim.now(), [&fired, id] {
        fired.push_back(static_cast<std::uint64_t>(id));
      });
      live.emplace_back(h, std::make_pair(when, id));
      model[{when, id}] = id;
    } else {
      std::size_t pick = static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_TRUE(sim.cancel(live[pick].first));
      model.erase(live[pick].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  sim.run();
  // Every surviving model entry fired, in (when, scheduling-order).
  std::vector<std::uint64_t> expected;
  for (auto& [key, id] : model) {
    expected.push_back(static_cast<std::uint64_t>(id));
  }
  EXPECT_EQ(fired.size(), expected.size());
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, TombstoneSlackIsBoundedUnderKeepaliveChurn) {
  // The keepalive pattern: arm a timeout far in the future, cancel it
  // when the pong arrives, rearm.  Cancelled entries never reach the
  // heap top, so without compaction the tombstones would accumulate
  // without bound.
  Simulator sim;
  std::size_t worst = 0;
  std::vector<TimerHandle> timeouts;
  constexpr int kLinks = 16;
  for (int i = 0; i < kLinks; ++i) {
    timeouts.push_back(sim.schedule(60 * kMinute, [] {}));
  }
  for (int round = 0; round < 1000; ++round) {
    for (auto& h : timeouts) {
      EXPECT_TRUE(sim.cancel(h));
      h = sim.schedule(60 * kMinute, [] {});
    }
    worst = std::max(worst, sim.tombstone_slack());
  }
  // Compaction fires once tombstones exceed both the floor (64) and the
  // live count, so slack never grows past one round's worth of churn
  // beyond that threshold.
  EXPECT_LE(worst, 64u + kLinks);
  EXPECT_EQ(sim.pending_events(), static_cast<std::size_t>(kLinks));
  // Survivors still fire exactly once.
  sim.run();
  EXPECT_EQ(sim.tombstone_slack(), 0u);
}

TEST(EventQueue, CompactionPreservesFireOrder) {
  Simulator sim;
  std::vector<int> order;
  std::vector<TimerHandle> doomed;
  // Interleave survivors and victims so compaction has to rebuild a
  // heap with holes everywhere.
  for (int i = 0; i < 300; ++i) {
    if (i % 2 == 0) {
      sim.schedule((i + 1) * kMillisecond, [&order, i] {
        order.push_back(i);
      });
    } else {
      doomed.push_back(sim.schedule((i + 1) * kMillisecond, [] {}));
    }
  }
  for (auto h : doomed) EXPECT_TRUE(sim.cancel(h));
  // 150 tombstones vs 150 live: compaction triggered during the cancels.
  sim.run();
  std::vector<int> expected;
  for (int i = 0; i < 300; i += 2) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, RunUntilDrainsTombstonesExactlyOnce) {
  Simulator sim;
  // A cancelled event sitting at the heap top ahead of the deadline
  // must be popped exactly once (not re-scanned by run_until and then
  // again by step) and must not advance the clock.
  auto a = sim.schedule(1 * kSecond, [] {});
  bool fired = false;
  sim.schedule(2 * kSecond, [&] { fired = true; });
  auto c = sim.schedule(3 * kSecond, [] {});
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_TRUE(sim.cancel(c));
  EXPECT_EQ(sim.tombstone_slack(), 2u);
  sim.run_until(2 * kSecond);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 2 * kSecond);
  EXPECT_EQ(sim.executed_events(), 1u);
  // Deadline past the second tombstone: queue fully drains, clock stays
  // at the deadline (tombstones never advance it).
  sim.run_until(4 * kSecond);
  EXPECT_EQ(sim.now(), 4 * kSecond);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.tombstone_slack(), 0u);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(EventQueue, ManyHandlesStayDistinctAcrossRecycling) {
  // Handles issued across heavy slot recycling never alias: cancelling
  // an old handle is always a no-op, cancelling the live one always
  // works.
  Simulator sim;
  std::vector<TimerHandle> stale;
  for (int round = 0; round < 50; ++round) {
    auto h = sim.schedule(kMillisecond, [] {});
    sim.run();  // fires, recycling the slot for the next round
    stale.push_back(h);
  }
  auto live = sim.schedule(kSecond, [] {});
  for (auto h : stale) EXPECT_FALSE(sim.cancel(h));
  EXPECT_TRUE(sim.cancel(live));
}

}  // namespace
}  // namespace wow::sim
