// Bootstrap-at-scale suite (DESIGN §15): multi-endpoint discovery with
// per-endpoint backoff, cached-peer rejoin, census wire format, the
// partitioned-ring merge protocol, and the flash-crowd scenarios —
// a simultaneous join burst with a bootstrap endpoint crashing
// mid-crowd must still converge to a single ring.
#include <gtest/gtest.h>

#include <cstdio>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "p2p/node.h"
#include "p2p/oracle.h"
#include "p2p/packet.h"
#include "p2p/peer_cache.h"
#include "test_util.h"
#include "transport/uri.h"
#include "wow/megascale.h"

namespace wow::p2p {
namespace {

using transport::TransportKind;
using transport::Uri;

Uri uri_of(net::Ipv4Addr ip, std::uint16_t port) {
  return Uri{TransportKind::kUdp, net::Endpoint{ip, port}};
}

// --- census wire format --------------------------------------------------

TEST(CensusWire, RoundTrip) {
  Rng rng(41);
  CensusFrame f;
  f.origin = rng.ring_id();
  f.hops = 7;
  f.ttl = 99;
  f.origin_uris = {uri_of(net::Ipv4Addr(10, 0, 0, 1), 100),
                   uri_of(net::Ipv4Addr(10, 0, 0, 2), 200)};
  Bytes wire = f.serialize();
  EXPECT_EQ(frame_kind(wire), FrameKind::kCensus);
  auto parsed = CensusFrame::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->origin, f.origin);
  EXPECT_EQ(parsed->hops, f.hops);
  EXPECT_EQ(parsed->ttl, f.ttl);
  EXPECT_EQ(parsed->origin_uris, f.origin_uris);
}

TEST(CensusWire, RejectsCorruptionAndTruncation) {
  Rng rng(43);
  CensusFrame f;
  f.origin = rng.ring_id();
  f.ttl = 64;
  f.origin_uris = {uri_of(net::Ipv4Addr(10, 0, 0, 3), 300)};
  Bytes wire = f.serialize();
  // Flip one payload byte: the link checksum must catch it.
  Bytes flipped = wire;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(CensusFrame::parse(flipped).has_value());
  // Truncation at every boundary parses to nothing, never UB.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes shorter(wire.begin(),
                  wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(CensusFrame::parse(shorter).has_value()) << "cut=" << cut;
  }
  // Drift guard: adding a FrameKind must revisit the wire suites.
  EXPECT_EQ(kFrameKindCount, 5u);
}

// --- peer cache ----------------------------------------------------------

TEST(PeerCacheUnit, BoundedWithLruEviction) {
  Rng rng(5);
  PeerCache cache(/*capacity=*/3, /*ttl=*/10 * kMinute);
  std::vector<Address> peers;
  for (int i = 0; i < 4; ++i) peers.push_back(rng.ring_id());
  transport::UriList uris(std::vector<Uri>{
      uri_of(net::Ipv4Addr(10, 0, 0, 9), 900)});

  cache.note(peers[0], uris, 1 * kSecond);
  cache.note(peers[1], uris, 2 * kSecond);
  cache.note(peers[2], uris, 3 * kSecond);
  EXPECT_EQ(cache.size(), 3u);
  // Full: the least recently seen entry (peers[0]) is overwritten.
  cache.note(peers[3], uris, 4 * kSecond);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains(peers[0]));
  EXPECT_TRUE(cache.contains(peers[3]));
  // The freshest entry wins the rejoin pick.
  ASSERT_NE(cache.freshest(), nullptr);
  EXPECT_EQ(cache.freshest()->addr, peers[3]);
  // Refreshing an existing entry bumps it instead of duplicating.
  cache.note(peers[1], uris, 9 * kSecond);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.freshest()->addr, peers[1]);
}

TEST(PeerCacheUnit, TtlEvictionRemovalAndDisabled) {
  Rng rng(6);
  PeerCache cache(/*capacity=*/4, /*ttl=*/kMinute);
  transport::UriList uris(std::vector<Uri>{
      uri_of(net::Ipv4Addr(10, 0, 0, 8), 800)});
  Address a = rng.ring_id();
  Address b = rng.ring_id();
  cache.note(a, uris, 0);
  cache.note(b, uris, 50 * kSecond);
  cache.evict_stale(70 * kSecond);  // `a` is 70s old: past the TTL
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  cache.remove(b);
  EXPECT_TRUE(cache.empty());
  // Empty URI lists are never cached (nothing to rejoin through).
  cache.note(a, transport::UriList{}, 0);
  EXPECT_TRUE(cache.empty());
  // A zero-capacity cache (the flyweight profile) stays empty and
  // contributes no protocol state.
  PeerCache off(/*capacity=*/0, /*ttl=*/kMinute);
  off.note(a, uris, 0);
  EXPECT_TRUE(off.empty());
  EXPECT_EQ(off.state_bytes(), 0u);
}

// --- endpoint rotation + backoff ----------------------------------------

TEST(BootstrapTest, RotatesPastDeadEndpointsWithBackoff) {
  testing::PublicOverlay net(8, /*seed=*/21);
  // Two dead well-known endpoints (hosts exist, no node listens) ahead
  // of the live one: the joiner must rotate through them, back each
  // off, and still land on the ring via the third.
  net::Host::Config hc;
  hc.name = "deadA";
  auto& dead_a = net.network.add_host(net::Ipv4Addr(128, 9, 0, 1),
                                      net::Network::kInternet, net.site, hc);
  hc.name = "deadB";
  auto& dead_b = net.network.add_host(net::Ipv4Addr(128, 9, 0, 2),
                                      net::Network::kInternet, net.site, hc);
  Node& joiner = *net.nodes[7];
  joiner.mutable_config().bootstrap = {
      uri_of(dead_a.ip(), 17000), uri_of(dead_b.ip(), 17000),
      uri_of(net.hosts[0]->ip(), 17000)};

  net.start_all();
  net.sim.run_for(6 * kMinute);

  EXPECT_TRUE(joiner.routable()) << "joiner never reached the ring";
  // Both dead endpoints were probed, failed, and are now backed off.
  EXPECT_GE(joiner.stats().bootstrap_endpoint_failures, 2u);
  EXPECT_GE(joiner.stats().bootstrap_probes, 3u);
  EXPECT_GT(joiner.bootstrap_retry_after(0), 0);
  EXPECT_GT(joiner.bootstrap_retry_after(1), 0);
}

// --- cached-peer rejoin --------------------------------------------------

TEST(BootstrapTest, CachedPeerRejoinWithoutAnyBootstrapEndpoint) {
  testing::PublicOverlay net(5, /*seed=*/33);
  net.start_all();
  net.sim.run_for(5 * kMinute);  // converge + a few cache refreshes
  ASSERT_EQ(net.routable_count(), 5);

  Node& mover = *net.nodes[3];
  ASSERT_GT(mover.peer_cache().size(), 0u)
      << "cache never warmed from live connections";
  EXPECT_LE(mover.peer_cache().size(), mover.peer_cache().capacity());

  // Kill the ONLY bootstrap endpoint (node 0), then the mover.  On
  // restart the mover holds no connections and cannot reach any
  // well-known endpoint — only the warm peer cache gets it back in.
  net.nodes[0]->stop();
  mover.stop();
  EXPECT_GT(mover.peer_cache().size(), 0u)
      << "cache must survive stop() like an on-disk cache file";
  net.sim.run_for(2 * kMinute);  // survivors drop the dead pair
  mover.restart();
  net.sim.run_for(4 * kMinute);

  EXPECT_TRUE(mover.routable()) << "mover never rejoined";
  EXPECT_GE(mover.stats().bootstrap_cache_rejoins, 1u)
      << "rejoin did not go through the peer cache";
}

// --- two pre-formed rings merge -----------------------------------------

TEST(BootstrapTest, TwoIndependentlyFormedRingsMergeIntoOne) {
#ifdef NDEBUG
  constexpr int kHalf = 100;
#else
  constexpr int kHalf = 12;  // debug builds: same protocol, smaller rings
#endif
  constexpr std::uint64_t kSeed = 47;
  sim::Simulator sim(kSeed);
  net::Network network(sim);
  auto site = network.add_site("site0");

  std::vector<net::Host*> hosts;
  std::vector<std::unique_ptr<Node>> nodes;
  for (int i = 0; i < 2 * kHalf; ++i) {
    auto ip = net::Ipv4Addr(128, static_cast<std::uint8_t>(1 + i / 250), 0,
                            static_cast<std::uint8_t>(1 + i % 250));
    net::Host::Config hc;
    hc.name = "host" + std::to_string(i);
    auto& host = network.add_host(ip, net::Network::kInternet, site, hc);
    hosts.push_back(&host);
    NodeConfig cfg;
    cfg.port = 17000;
    cfg.census_interval = 30 * kSecond;
    // Disjoint bootstrap universes: group A (0..kHalf-1) seeds off node
    // 0, group B off node kHalf — two overlays that have never heard of
    // each other.
    int seed_node = i < kHalf ? 0 : kHalf;
    if (i != seed_node) {
      cfg.bootstrap = {uri_of(hosts[static_cast<std::size_t>(seed_node)]->ip(),
                              17000)};
    }
    nodes.push_back(std::make_unique<Node>(
        NodeDeps::sim(sim, network, host), cfg));
  }
  for (auto& n : nodes) n->start();

  auto live = [&] {
    std::vector<Node*> v;
    for (auto& n : nodes) {
      if (n->running()) v.push_back(n.get());
    }
    return v;
  };

  // Let both rings form and self-stabilize independently.
  SimTime split_deadline = sim.now() + 20 * kMinute;
  while (Oracle::ring_census(live()) != 2 && sim.now() < split_deadline) {
    sim.run_for(10 * kSecond);
  }
  ASSERT_EQ(Oracle::ring_census(live()), 2u)
      << "two separate rings never formed (seed=" << kSeed << ")";

  // The heal: a handful of A nodes learn B's well-known endpoint (an
  // updated bootstrap list).  Their in-ring re-probe bridges a leaf into
  // ring B, the census probe crosses it, and the merge protocol pulls
  // the rings together.
  for (int i = 1; i <= 3; ++i) {
    nodes[static_cast<std::size_t>(i)]->mutable_config().bootstrap.push_back(
        uri_of(hosts[kHalf]->ip(), 17000));
  }

  SimTime merge_deadline = sim.now() + 40 * kMinute;
  while (Oracle::ring_census(live()) != 1 && sim.now() < merge_deadline) {
    sim.run_for(10 * kSecond);
  }
  EXPECT_EQ(Oracle::ring_census(live()), 1u)
      << "rings never merged (seed=" << kSeed << ")";

  std::uint64_t initiated = 0;
  std::uint64_t completed = 0;
  std::uint64_t censuses = 0;
  for (const auto& n : nodes) {
    initiated += n->stats().merges_initiated;
    completed += n->stats().merges_completed;
    censuses += n->stats().census_launched;
  }
  EXPECT_GE(initiated, 1u) << "merge was never initiated by the census";
  EXPECT_GE(completed, 1u) << "no merge bridge link completed";
  EXPECT_GT(censuses, 0u);

  // Full structural convergence follows the topological merge: let the
  // near repair finish, then the oracle (which includes the ring_census
  // invariant) must be green.
  SimTime settle_deadline = sim.now() + 30 * kMinute;
  Oracle::Config ocfg;
  ocfg.seed = kSeed;
  ocfg.max_route_pairs = 2000;
  OracleReport report;
  while (sim.now() < settle_deadline) {
    sim.run_for(30 * kSecond);
    report = Oracle::check(live(), sim.now(), ocfg);
    if (report.ok) break;
  }
  EXPECT_TRUE(report.ok) << report.to_string();
}

// --- flash crowd ---------------------------------------------------------

/// Shared flash-crowd scenario: `n` nodes join in one simultaneous
/// burst against a 3-endpoint well-known bootstrap service; one
/// endpoint crashes mid-crowd and restarts later.  The crowd must
/// still converge to a single ring.
void run_flash_crowd(int n, std::uint64_t seed, bool flyweight) {
  MegascaleConfig cfg;
  cfg.seed = seed;
  cfg.nodes = n;
  cfg.flyweight = flyweight;
  cfg.wellknown_endpoints = 3;
  cfg.join_stagger = 0;  // the burst
  cfg.check_period = 15 * kSecond;
  cfg.settle_horizon = 30 * kMinute;
  MegascaleNet net(cfg);

  net.start_burst(static_cast<std::size_t>(n));
  ASSERT_EQ(net.started(), static_cast<std::size_t>(n));

  // Mid-crowd fault: well-known endpoint #1 dies while the crowd is
  // still joining, and comes back two minutes later.
  net.sim.run_for(10 * kSecond);
  net.nodes[1]->stop();
  net.sim.run_for(2 * kMinute);
  net.nodes[1]->restart();

  auto converged_at = net.run_until_converged();
  ASSERT_TRUE(converged_at.has_value())
      << "flash crowd did not converge to a closed ring (seed=" << seed
      << ", nodes=" << n << ")";
  EXPECT_EQ(net.ring_census(), 1u);

  p2p::OracleReport oracle = net.oracle_check(/*max_route_pairs=*/2000);
  EXPECT_TRUE(oracle.ok) << oracle.to_string();

  MegascaleNet::JoinStats js = net.join_latency_stats();
  EXPECT_EQ(js.joined, static_cast<std::size_t>(n));
  EXPECT_EQ(js.unjoined, 0u);
  EXPECT_GT(js.p50_s, 0.0);
  EXPECT_GE(js.p99_s, js.p50_s);
  EXPECT_LE(js.max_s, to_seconds(net.sim.now()));
  std::printf(
      "flash crowd n=%d seed=%llu: single ring at t=%.0fs; join latency "
      "p50=%.1fs p95=%.1fs p99=%.1fs max=%.1fs\n",
      n, static_cast<unsigned long long>(seed), to_seconds(*converged_at),
      js.p50_s, js.p95_s, js.p99_s, js.max_s);
}

TEST(FlashCrowdTest, BurstWithEndpointCrashConverges) {
  // Default (full-service) profile: gossip peer-sampling and the peer
  // cache are active, spreading the CTM join load off the three
  // well-known endpoints.
  run_flash_crowd(/*n=*/256, /*seed=*/13, /*flyweight=*/false);
}

// The acceptance-scale run: a 10k-node simultaneous burst with a
// bootstrap endpoint crashing mid-crowd.  Needs an optimized build.
TEST(FlashCrowdTest, TenThousandNodeBurstConverges) {
#ifndef NDEBUG
  GTEST_SKIP() << "10k-node flash crowd needs an optimized build";
#else
  run_flash_crowd(/*n=*/10000, /*seed=*/1, /*flyweight=*/true);
#endif
}

}  // namespace
}  // namespace wow::p2p
