#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "p2p/adversary.h"
#include "p2p/misbehavior.h"
#include "p2p/oracle.h"
#include "p2p/peer_cache.h"
#include "test_util.h"

namespace wow {
namespace {

using testing::PublicOverlay;

// Every attack→defense pair from DESIGN §16, plus the honest-majority
// convergence soak.  The same adversary fabric drives both polarities:
// defenses ON must keep the containment oracle green, defenses OFF must
// reproduce the violation the defense exists to prevent.

// ------------------------------------------------------- building blocks

p2p::Address addr_of(std::uint64_t n) { return p2p::Address{n}; }

net::Endpoint ep(std::uint8_t last, std::uint16_t port = 17000) {
  return net::Endpoint{net::Ipv4Addr(10, 0, 0, last), port};
}

// ------------------------------------------------- keyed defense tokens

TEST(DefenseTokens, KeyedStreamIsNotGuessableOrZero) {
  // Real identities are uniform 160-bit draws (the token key is the
  // address's high half, so low-limb-only toy addresses all share one
  // stream — the helper is keyed for the production address space).
  Rng rng(123);
  const p2p::Address a = rng.ring_id();
  const p2p::Address b = rng.ring_id();
  std::set<std::uint32_t> seen;
  for (std::uint32_t c = 0; c < 256; ++c) {
    std::uint32_t t = p2p::defense_token(a, c);
    ASSERT_NE(t, 0u);
    // The spray range a sequential mint would occupy.
    ASSERT_GT(t, 64u) << "counter " << c << " landed in the guessable band";
    seen.insert(t);
  }
  EXPECT_EQ(seen.size(), 256u) << "token stream collided with itself";
  // Different identities mint disjoint-looking streams.
  EXPECT_NE(p2p::defense_token(a, 0), p2p::defense_token(b, 0));
  // Deterministic: same key, same counter, same token.
  EXPECT_EQ(p2p::defense_token(a, 7), p2p::defense_token(a, 7));
}

// ---------------------------------------------------- misbehavior ledger

TEST(MisbehaviorLedger, GarbageSourceCrossesThresholdOnce) {
  p2p::MisbehaviorLedger ledger;
  const net::Endpoint bad = ep(1);
  SimTime now = kSecond;
  bool crossed = false;
  for (int i = 0; i < 8; ++i) {
    crossed = ledger.note(bad, p2p::kMisbehaviorParseReject, now);
  }
  EXPECT_TRUE(crossed) << "8 weight-1 notes must cross the threshold of 8";
  // The score resets on crossing: one punishment per episode.
  EXPECT_FALSE(ledger.note(bad, p2p::kMisbehaviorParseReject, now));
}

TEST(MisbehaviorLedger, QuietWindowForgivesHonestCorruption) {
  p2p::MisbehaviorLedger ledger;
  const net::Endpoint flaky = ep(2);
  SimTime now = kSecond;
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(ledger.note(flaky, p2p::kMisbehaviorParseReject, now));
  }
  // One full quiet window: the slate wipes clean.
  now += kMinute + kSecond;
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(ledger.note(flaky, p2p::kMisbehaviorParseReject, now))
        << "decayed score must not accumulate across quiet windows";
  }
}

TEST(MisbehaviorLedger, RateLimiterShedsControlBurst) {
  p2p::MisbehaviorLedger ledger;
  const net::Endpoint noisy = ep(3);
  SimTime now = kSecond;
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (ledger.admit_control(noisy, now)) ++admitted;
  }
  EXPECT_EQ(admitted, 64) << "burst capacity is 64 control frames";
  // Refill is exact integer arithmetic: one second buys rate_per_sec.
  now += kSecond;
  admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (ledger.admit_control(noisy, now)) ++admitted;
  }
  EXPECT_EQ(admitted, 16);
  // A different endpoint is untouched: buckets are per source.
  EXPECT_TRUE(ledger.admit_control(ep(4), now));
}

// -------------------------------------------------- peer cache poisoning

TEST(PeerCachePoison, PerSourceCapRefusesFloodOfHearsay) {
  p2p::PeerCache cache(/*capacity=*/32, /*ttl=*/60 * kMinute, /*per_source_cap=*/4);
  const p2p::Address liar = addr_of(99);
  transport::UriList uris;
  uris.push_back(transport::Uri{transport::TransportKind::kUdp, ep(9)});
  int accepted = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (cache.note(addr_of(1000 + i), uris, kSecond, /*verified=*/false,
                   liar)) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4) << "a single gossip source may plant at most 4";
  // A second source gets its own allowance — the cap is per source, not
  // a global hearsay freeze.
  EXPECT_TRUE(cache.note(addr_of(2000), uris, kSecond, /*verified=*/false,
                         addr_of(98)));
}

TEST(PeerCachePoison, VerifiedEntriesOutrankAndOutliveHearsay) {
  p2p::PeerCache cache(/*capacity=*/4, /*ttl=*/60 * kMinute, /*per_source_cap=*/0);
  transport::UriList uris;
  uris.push_back(transport::Uri{transport::TransportKind::kUdp, ep(9)});
  // One stale first-hand entry, then a flood of fresher hearsay.
  cache.note(addr_of(1), uris, kSecond, /*verified=*/true);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.note(addr_of(100 + i), uris, 10 * kSecond, /*verified=*/false,
               addr_of(99));
  }
  // The rejoin path must still pick the first-hand entry, and the
  // eviction churn must have consumed hearsay, not the verified entry.
  ASSERT_NE(cache.freshest(), nullptr);
  EXPECT_EQ(cache.freshest()->addr, addr_of(1));
  EXPECT_EQ(cache.verified_count(), 1u);
  // Gossip about a verified peer cannot strip its verification.
  cache.note(addr_of(1), uris, 20 * kSecond, /*verified=*/false, addr_of(99));
  EXPECT_EQ(cache.verified_count(), 1u);
}

// -------------------------------------------------- attack→defense pairs
//
// Each pair runs the SAME adversary behavior against a formed overlay,
// once with defenses and once without, and asserts the defense-specific
// counters plus the containment oracle's verdict.  The adversary rides
// node `kAdversary` — honestly joined, attacking its ring neighbors.

constexpr std::size_t kAdversary = 3;

struct ByzantineNet {
  explicit ByzantineNet(bool defenses, p2p::AdversaryAgent::Behaviors mix,
                        int n = 10, std::uint64_t seed = 411)
      : base_config(), net(make_net(defenses, n, seed)) {
    net.start_all();
    net.sim.run_until(3 * kMinute);
    agent = std::make_unique<p2p::AdversaryAgent>(
        *net.nodes[kAdversary], net.sim, seed ^ 0xadl, mix);
    agent->start();
  }

  static PublicOverlay make_net(bool defenses, int n, std::uint64_t seed) {
    p2p::NodeConfig cfg;
    cfg.defenses_enabled = defenses;
    return PublicOverlay(n, seed, cfg);
  }

  /// Oracle verdict with the full identity roster armed.
  [[nodiscard]] p2p::OracleReport verdict() {
    p2p::Oracle::Config cfg;
    cfg.known_addresses = addresses();
    cfg.adversary_addresses = {net.nodes[kAdversary]->address()};
    std::vector<p2p::Node*> live;
    for (auto& n : net.nodes) {
      if (n->running()) live.push_back(n.get());
    }
    return p2p::Oracle::check(live, net.sim.now(), cfg);
  }

  [[nodiscard]] std::vector<p2p::Address> addresses() const {
    std::vector<p2p::Address> out;
    for (const auto& n : net.nodes) out.push_back(n->address());
    return out;
  }

  /// Sum of a per-node counter over the honest fleet.
  template <typename F>
  [[nodiscard]] std::uint64_t sum(F f) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < net.nodes.size(); ++i) {
      if (i != kAdversary) total += f(*net.nodes[i]);
    }
    return total;
  }

  p2p::NodeConfig base_config;
  PublicOverlay net;
  std::unique_ptr<p2p::AdversaryAgent> agent;
};

TEST(AttackDefense, ForgedRelayInstallsPhantomOnlyWithoutDefenses) {
  p2p::AdversaryAgent::Behaviors mix{};
  mix.spoof_ctm = mix.replay_ctm = mix.forge_census = mix.poison_gossip =
      false;  // forge_relay only

  {
    ByzantineNet on(/*defenses=*/true, mix);
    on.net.sim.run_for(5 * kMinute);
    EXPECT_GT(on.agent->stats().forged_relay_frames, 0u);
    EXPECT_GT(on.sum([](const p2p::Node& n) {
                return n.stats().forged_relay_rejects;
              }),
              0u)
        << "honest nodes must be REJECTING the forged relay frames";
    auto report = on.verdict();
    EXPECT_TRUE(report.ok) << report.to_string();
  }
  {
    ByzantineNet off(/*defenses=*/false, mix);
    off.net.sim.run_for(5 * kMinute);
    auto report = off.verdict();
    ASSERT_FALSE(report.ok)
        << "defenses off: the no-handshake phantom install must land";
    EXPECT_EQ(report.invariant, "phantom_identity") << report.to_string();
  }
}

TEST(AttackDefense, CtmReplayWindowAnswersDuplicatesMinimally) {
  p2p::AdversaryAgent::Behaviors mix{};
  mix.spoof_ctm = mix.forge_relay = mix.forge_census = mix.poison_gossip =
      false;  // replay_ctm only

  ByzantineNet on(/*defenses=*/true, mix);
  on.net.sim.run_for(5 * kMinute);
  EXPECT_GT(on.agent->stats().replayed_requests, 0u);
  EXPECT_GT(
      on.sum([](const p2p::Node& n) { return n.stats().replays_detected; }),
      0u)
      << "the replay window must be catching the duplicate (src, token)";
  auto report = on.verdict();
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(AttackDefense, SpoofedRepliesMissKeyedTokensAndInstallNothing) {
  p2p::AdversaryAgent::Behaviors mix{};
  mix.replay_ctm = mix.forge_relay = mix.forge_census = mix.poison_gossip =
      false;  // spoof_ctm only

  ByzantineNet on(/*defenses=*/true, mix);
  on.net.sim.run_for(5 * kMinute);
  EXPECT_GT(on.agent->stats().spoofed_ctm_replies, 0u);
  auto report = on.verdict();
  EXPECT_TRUE(report.ok) << report.to_string();
}

TEST(AttackDefense, ForgedCensusIsArcBoundedAndInstallsNothing) {
  p2p::AdversaryAgent::Behaviors mix{};
  mix.spoof_ctm = mix.replay_ctm = mix.forge_relay = mix.poison_gossip =
      false;  // forge_census only

  ByzantineNet on(/*defenses=*/true, mix);
  // The honest fleet runs the census so the merge rule is live —
  // exactly the machinery the forged origins try to conscript.
  on.net.sim.run_for(8 * kMinute);
  EXPECT_GT(on.agent->stats().forged_census_frames, 0u);
  auto report = on.verdict();
  EXPECT_TRUE(report.ok) << report.to_string();
}

// ------------------------------------------- honest-majority convergence

/// The composite soak: every behavior on, 10% adversaries, and the ring
/// must still converge with zero phantom identities.  (The 512-node
/// 8-seed version of this runs as chaos_runner --profile=byzantine in
/// the CI soak matrix; this is the in-tree fast path.)
TEST(ByzantineSoak, HonestMajorityConvergesUnderFullAttackMix) {
  p2p::NodeConfig cfg;
  cfg.census_interval = kMinute;  // census + merge machinery under fire
  PublicOverlay net(40, /*seed=*/4242, cfg);
  net.start_all();

  std::vector<std::unique_ptr<p2p::AdversaryAgent>> adversaries;
  std::vector<p2p::Address> cast;
  for (std::size_t i = 10; i < net.nodes.size(); i += 10) {
    adversaries.push_back(std::make_unique<p2p::AdversaryAgent>(
        *net.nodes[i], net.sim, 4242 + i));
    cast.push_back(net.nodes[i]->address());
    adversaries.back()->start();  // attacking while the ring FORMS
  }
  ASSERT_EQ(adversaries.size(), 3u);
  net.sim.run_until(15 * kMinute);

  std::uint64_t injected = 0;
  for (const auto& a : adversaries) injected += a->stats().frames_injected;
  EXPECT_GT(injected, 1000u) << "the fabric must have actually attacked";

  p2p::Oracle::Config ocfg;
  for (const auto& n : net.nodes) {
    ocfg.known_addresses.push_back(n->address());
  }
  ocfg.adversary_addresses = cast;
  std::vector<p2p::Node*> live;
  for (auto& n : net.nodes) live.push_back(n.get());
  auto report = p2p::Oracle::check(live, net.sim.now(), ocfg);
  EXPECT_TRUE(report.ok) << report.to_string();
}

/// Identical byzantine runs are identical: the fabric draws only from
/// its own seeded Rng, so attack schedules are reproducible artifacts.
TEST(ByzantineSoak, AdversaryFabricIsDeterministic) {
  auto run_once = [] {
    p2p::NodeConfig cfg;
    PublicOverlay net(12, /*seed=*/77, cfg);
    net.start_all();
    net.sim.run_until(2 * kMinute);
    p2p::AdversaryAgent agent(*net.nodes[4], net.sim, 909);
    agent.start();
    net.sim.run_for(5 * kMinute);
    std::uint64_t rejects = 0;
    for (const auto& n : net.nodes) {
      rejects += n->stats().forged_relay_rejects +
                 n->stats().replays_detected + n->stats().rate_limit_sheds;
    }
    return std::pair<std::uint64_t, std::uint64_t>(
        agent.stats().frames_injected, rejects);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.first, 0u);
}

}  // namespace
}  // namespace wow
