#include <gtest/gtest.h>

#include <sstream>

#include "ipop/icmp_service.h"
#include "test_util.h"
#include "wow/testbed.h"

namespace wow {
namespace {

/// A fingerprint of an overlay's end state: connection sets, stats
/// counters, and network totals.  Two runs with the same seed must
/// produce identical fingerprints — the repository's core guarantee
/// that experiments are reproducible.
std::string fingerprint(testing::PublicOverlay& net) {
  std::ostringstream out;
  for (auto& n : net.nodes) {
    out << n->address().to_hex() << ':';
    n->connections().for_each([&](const p2p::Connection& c) {
      out << c.addr.brief() << '/' << p2p::to_string(c.type) << '@'
          << c.remote.to_string() << ',';
    });
    const auto& s = n->stats();
    out << '|' << s.data_sent << '/' << s.data_delivered << '/'
        << s.data_forwarded << '/' << s.connections_added << ';';
  }
  const auto& ns = net.network.stats();
  out << "net:" << ns.sent << '/' << ns.delivered << '/'
      << ns.dropped_loss << '/' << ns.dropped_nat_filtered;
  return out.str();
}

std::string run_overlay(std::uint64_t seed) {
  testing::PublicOverlay net(10, seed);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  // Drive some traffic so data-plane paths execute too.
  for (auto& a : net.nodes) {
    for (auto& b : net.nodes) {
      if (a != b) a->send_data(b->address(), Bytes{7});
    }
  }
  net.sim.run_for(kMinute);
  return fingerprint(net);
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  EXPECT_EQ(run_overlay(12345), run_overlay(12345));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_overlay(12345), run_overlay(54321));
}

/// The observability layer is a pure observer: attaching a trace sink
/// and snapshotting metrics mid-run must leave the simulation byte-
/// identical to an uninstrumented run.
TEST(Determinism, TracingAndMetricsDoNotPerturbRuns) {
  auto run = [](bool instrumented, std::uint64_t* executed) {
    StringTraceSink sink;
    testing::PublicOverlay net(10, 4242);
    if (instrumented) net.sim.trace().attach(&sink);
    net.start_all();
    net.sim.run_until(3 * kMinute);
    if (instrumented) {
      // Mid-run metric snapshots must not perturb either.
      (void)net.sim.metrics().to_json();
      (void)net.sim.metrics().to_prometheus();
    }
    for (auto& a : net.nodes) {
      for (auto& b : net.nodes) {
        if (a != b) a->send_data(b->address(), Bytes{7});
      }
    }
    net.sim.run_for(kMinute);
    *executed = net.sim.executed_events();
    std::string fp = fingerprint(net);
    if (instrumented) {
      EXPECT_FALSE(sink.lines().empty());
      net.sim.trace().detach();
    }
    return fp;
  };
  std::uint64_t plain_events = 0;
  std::uint64_t traced_events = 0;
  std::string plain = run(false, &plain_events);
  std::string traced = run(true, &traced_events);
  EXPECT_EQ(plain, traced);
  EXPECT_EQ(plain_events, traced_events);
}

TEST(Determinism, TestbedCountersReproduce) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.planetlab_routers = 24;
    cfg.planetlab_hosts = 8;
    Testbed bed(sim, cfg);
    bed.start_all(3 * kMinute);
    sim.run_for(3 * kMinute);
    std::ostringstream out;
    out << bed.routable_compute_nodes() << '|'
        << bed.network().stats().sent << '|'
        << bed.network().stats().delivered << '|'
        << sim.executed_events();
    return out.str();
  };
  EXPECT_EQ(run(777), run(777));
}

}  // namespace
}  // namespace wow
