#include <gtest/gtest.h>

#include <sstream>

#include "ipop/icmp_service.h"
#include "test_util.h"
#include "wow/testbed.h"

namespace wow {
namespace {

/// A fingerprint of an overlay's end state: connection sets, stats
/// counters, and network totals.  Two runs with the same seed must
/// produce identical fingerprints — the repository's core guarantee
/// that experiments are reproducible.
std::string fingerprint(testing::PublicOverlay& net) {
  std::ostringstream out;
  for (auto& n : net.nodes) {
    out << n->address().to_hex() << ':';
    n->connections().for_each([&](const p2p::Connection& c) {
      out << c.addr.brief() << '/' << p2p::to_string(c.type) << '@'
          << c.remote.to_string() << ',';
    });
    const auto& s = n->stats();
    out << '|' << s.data_sent << '/' << s.data_delivered << '/'
        << s.data_forwarded << '/' << s.connections_added << ';';
  }
  const auto& ns = net.network.stats();
  out << "net:" << ns.sent << '/' << ns.delivered << '/'
      << ns.drops(net::Network::DropReason::kLoss) << '/'
      << ns.drops(net::Network::DropReason::kNatFiltered);
  return out.str();
}

std::string run_overlay(std::uint64_t seed) {
  testing::PublicOverlay net(10, seed);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  // Drive some traffic so data-plane paths execute too.
  for (auto& a : net.nodes) {
    for (auto& b : net.nodes) {
      if (a != b) a->send_data(b->address(), Bytes{7});
    }
  }
  net.sim.run_for(kMinute);
  return fingerprint(net);
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  EXPECT_EQ(run_overlay(12345), run_overlay(12345));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_overlay(12345), run_overlay(54321));
}

/// The observability layer is a pure observer: attaching a trace sink
/// and snapshotting metrics mid-run must leave the simulation byte-
/// identical to an uninstrumented run.
TEST(Determinism, TracingAndMetricsDoNotPerturbRuns) {
  auto run = [](bool instrumented, std::uint64_t* executed) {
    StringTraceSink sink;
    testing::PublicOverlay net(10, 4242);
    if (instrumented) net.sim.trace().attach(&sink);
    net.start_all();
    net.sim.run_until(3 * kMinute);
    if (instrumented) {
      // Mid-run metric snapshots must not perturb either.
      (void)net.sim.metrics().to_json();
      (void)net.sim.metrics().to_prometheus();
    }
    for (auto& a : net.nodes) {
      for (auto& b : net.nodes) {
        if (a != b) a->send_data(b->address(), Bytes{7});
      }
    }
    net.sim.run_for(kMinute);
    *executed = net.sim.executed_events();
    std::string fp = fingerprint(net);
    if (instrumented) {
      EXPECT_FALSE(sink.lines().empty());
      net.sim.trace().detach();
    }
    return fp;
  };
  std::uint64_t plain_events = 0;
  std::uint64_t traced_events = 0;
  std::string plain = run(false, &plain_events);
  std::string traced = run(true, &traced_events);
  EXPECT_EQ(plain, traced);
  EXPECT_EQ(plain_events, traced_events);
}

/// Trace sampling is pure observation: thinning the packet-class trace
/// must not move a single protocol event at any rate, rate 1.0 must be
/// byte-identical to a run that never configured sampling, and the
/// sampling verdicts themselves must reproduce across runs.
TEST(Determinism, TraceSamplingDoesNotPerturbRuns) {
  struct Run {
    std::string fp;
    std::uint64_t executed = 0;
    std::uint64_t dropped = 0;
    std::vector<std::string> trace;
  };
  auto run = [](double rate, bool set_rate) {
    StringTraceSink sink;
    testing::PublicOverlay net(10, 9292);
    net.sim.trace().attach(&sink);
    if (set_rate) net.sim.trace().set_sample_rate(rate);
    net.start_all();
    net.sim.run_until(3 * kMinute);
    for (auto& a : net.nodes) {
      for (auto& b : net.nodes) {
        if (a != b) a->send_data(b->address(), Bytes{7});
      }
    }
    net.sim.run_for(kMinute);
    Run r;
    r.fp = fingerprint(net);
    r.executed = net.sim.executed_events();
    r.dropped = net.sim.trace().dropped_by_sampling();
    net.sim.trace().detach();
    r.trace = sink.lines();
    return r;
  };
  Run unsampled = run(1.0, /*set_rate=*/false);
  Run full = run(1.0, /*set_rate=*/true);
  Run one_pct = run(0.01, /*set_rate=*/true);
  Run zero = run(0.0, /*set_rate=*/true);

  // Protocol behavior is identical at every rate.
  EXPECT_EQ(unsampled.fp, full.fp);
  EXPECT_EQ(unsampled.fp, one_pct.fp);
  EXPECT_EQ(unsampled.fp, zero.fp);
  EXPECT_EQ(unsampled.executed, full.executed);
  EXPECT_EQ(unsampled.executed, one_pct.executed);
  EXPECT_EQ(unsampled.executed, zero.executed);

  // rate >= 1.0 short-circuits the hash: byte-identical trace, nothing
  // counted as dropped.
  EXPECT_EQ(unsampled.trace, full.trace);
  EXPECT_EQ(full.dropped, 0u);

  // Thinned traces shrink and account for every suppressed record;
  // always-on classes keep the trace non-empty even at rate 0.
  ASSERT_FALSE(zero.trace.empty());
  EXPECT_LT(one_pct.trace.size(), unsampled.trace.size());
  EXPECT_GT(one_pct.dropped, 0u);
  EXPECT_LE(zero.trace.size(), one_pct.trace.size());
  EXPECT_GE(zero.dropped, one_pct.dropped);

  // Which packets survive the rate is itself deterministic.
  Run one_pct_again = run(0.01, /*set_rate=*/true);
  EXPECT_EQ(one_pct.trace, one_pct_again.trace);
  EXPECT_EQ(one_pct.dropped, one_pct_again.dropped);
}

/// The fault fabric is part of the deterministic core: the same seed
/// and fault plan must reproduce the run — and its trace — byte for
/// byte, or the chaos harness's (seed, schedule) reproducer is a lie.
TEST(Determinism, ChaosScheduleRunsAreByteIdentical) {
  auto run = [](std::vector<std::string>* trace) {
    StringTraceSink sink;
    testing::PublicOverlay net(10, 6060);
    net.sim.trace().attach(&sink);
    net.start_all();
    net.sim.run_until(3 * kMinute);

    net::FaultPlan::RandomParams params;
    params.start = net.sim.now();
    params.horizon = net.sim.now() + 5 * kMinute;
    params.sites = {net.site};
    for (std::size_t i = 5; i < net.nodes.size(); ++i) {
      params.hosts.push_back(net.hosts[i]->id());
    }
    net.network.faults().schedule(net::FaultPlan::random(13, params));

    for (int burst = 0; burst < 18; ++burst) {
      auto& target = net.nodes[static_cast<std::size_t>(burst) %
                               net.nodes.size()];
      for (auto& a : net.nodes) {
        if (a != target) a->send_data(target->address(), Bytes{9});
      }
      net.sim.run_for(20 * kSecond);
    }
    std::string fp = fingerprint(net);
    net.sim.trace().detach();
    *trace = sink.lines();
    return fp;
  };
  std::vector<std::string> trace_a;
  std::vector<std::string> trace_b;
  std::string fp_a = run(&trace_a);
  std::string fp_b = run(&trace_b);
  EXPECT_EQ(fp_a, fp_b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
}

TEST(Determinism, TestbedCountersReproduce) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.planetlab_routers = 24;
    cfg.planetlab_hosts = 8;
    Testbed bed(sim, cfg);
    bed.start_all(3 * kMinute);
    sim.run_for(3 * kMinute);
    std::ostringstream out;
    out << bed.routable_compute_nodes() << '|'
        << bed.network().stats().sent << '|'
        << bed.network().stats().delivered << '|'
        << sim.executed_events();
    return out.str();
  };
  EXPECT_EQ(run(777), run(777));
}

}  // namespace
}  // namespace wow
