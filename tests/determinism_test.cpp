#include <gtest/gtest.h>

#include <sstream>

#include "ipop/icmp_service.h"
#include "test_util.h"
#include "wow/testbed.h"

namespace wow {
namespace {

/// A fingerprint of an overlay's end state: connection sets, stats
/// counters, and network totals.  Two runs with the same seed must
/// produce identical fingerprints — the repository's core guarantee
/// that experiments are reproducible.
std::string fingerprint(testing::PublicOverlay& net) {
  std::ostringstream out;
  for (auto& n : net.nodes) {
    out << n->address().to_hex() << ':';
    n->connections().for_each([&](const p2p::Connection& c) {
      out << c.addr.brief() << '/' << p2p::to_string(c.type) << '@'
          << c.remote.to_string() << ',';
    });
    const auto& s = n->stats();
    out << '|' << s.data_sent << '/' << s.data_delivered << '/'
        << s.data_forwarded << '/' << s.connections_added << ';';
  }
  const auto& ns = net.network.stats();
  out << "net:" << ns.sent << '/' << ns.delivered << '/'
      << ns.drops(net::Network::DropReason::kLoss) << '/'
      << ns.drops(net::Network::DropReason::kNatFiltered);
  return out.str();
}

std::string run_overlay(std::uint64_t seed) {
  testing::PublicOverlay net(10, seed);
  net.start_all();
  net.sim.run_until(3 * kMinute);
  // Drive some traffic so data-plane paths execute too.
  for (auto& a : net.nodes) {
    for (auto& b : net.nodes) {
      if (a != b) a->send_data(b->address(), Bytes{7});
    }
  }
  net.sim.run_for(kMinute);
  return fingerprint(net);
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  EXPECT_EQ(run_overlay(12345), run_overlay(12345));
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_overlay(12345), run_overlay(54321));
}

/// The observability layer is a pure observer: attaching a trace sink
/// and snapshotting metrics mid-run must leave the simulation byte-
/// identical to an uninstrumented run.
TEST(Determinism, TracingAndMetricsDoNotPerturbRuns) {
  auto run = [](bool instrumented, std::uint64_t* executed) {
    StringTraceSink sink;
    testing::PublicOverlay net(10, 4242);
    if (instrumented) net.sim.trace().attach(&sink);
    net.start_all();
    net.sim.run_until(3 * kMinute);
    if (instrumented) {
      // Mid-run metric snapshots must not perturb either.
      (void)net.sim.metrics().to_json();
      (void)net.sim.metrics().to_prometheus();
    }
    for (auto& a : net.nodes) {
      for (auto& b : net.nodes) {
        if (a != b) a->send_data(b->address(), Bytes{7});
      }
    }
    net.sim.run_for(kMinute);
    *executed = net.sim.executed_events();
    std::string fp = fingerprint(net);
    if (instrumented) {
      EXPECT_FALSE(sink.lines().empty());
      net.sim.trace().detach();
    }
    return fp;
  };
  std::uint64_t plain_events = 0;
  std::uint64_t traced_events = 0;
  std::string plain = run(false, &plain_events);
  std::string traced = run(true, &traced_events);
  EXPECT_EQ(plain, traced);
  EXPECT_EQ(plain_events, traced_events);
}

/// The fault fabric is part of the deterministic core: the same seed
/// and fault plan must reproduce the run — and its trace — byte for
/// byte, or the chaos harness's (seed, schedule) reproducer is a lie.
TEST(Determinism, ChaosScheduleRunsAreByteIdentical) {
  auto run = [](std::vector<std::string>* trace) {
    StringTraceSink sink;
    testing::PublicOverlay net(10, 6060);
    net.sim.trace().attach(&sink);
    net.start_all();
    net.sim.run_until(3 * kMinute);

    net::FaultPlan::RandomParams params;
    params.start = net.sim.now();
    params.horizon = net.sim.now() + 5 * kMinute;
    params.sites = {net.site};
    for (std::size_t i = 5; i < net.nodes.size(); ++i) {
      params.hosts.push_back(net.hosts[i]->id());
    }
    net.network.faults().schedule(net::FaultPlan::random(13, params));

    for (int burst = 0; burst < 18; ++burst) {
      auto& target = net.nodes[static_cast<std::size_t>(burst) %
                               net.nodes.size()];
      for (auto& a : net.nodes) {
        if (a != target) a->send_data(target->address(), Bytes{9});
      }
      net.sim.run_for(20 * kSecond);
    }
    std::string fp = fingerprint(net);
    net.sim.trace().detach();
    *trace = sink.lines();
    return fp;
  };
  std::vector<std::string> trace_a;
  std::vector<std::string> trace_b;
  std::string fp_a = run(&trace_a);
  std::string fp_b = run(&trace_b);
  EXPECT_EQ(fp_a, fp_b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
}

TEST(Determinism, TestbedCountersReproduce) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim(seed);
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.planetlab_routers = 24;
    cfg.planetlab_hosts = 8;
    Testbed bed(sim, cfg);
    bed.start_all(3 * kMinute);
    sim.run_for(3 * kMinute);
    std::ostringstream out;
    out << bed.routable_compute_nodes() << '|'
        << bed.network().stats().sent << '|'
        << bed.network().stats().delivered << '|'
        << sim.executed_events();
    return out.str();
  };
  EXPECT_EQ(run(777), run(777));
}

}  // namespace
}  // namespace wow
