#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/network.h"
#include "net/sim_edge.h"
#include "p2p/connection_table.h"
#include "p2p/linking.h"
#include "p2p/shortcut_overlord.h"
#include "sim/simulator.h"

namespace wow::p2p {
namespace {

Connection make_conn(std::uint64_t addr, ConnectionType type) {
  Connection c;
  c.addr = Address{addr};
  c.type = type;
  c.remote = net::Endpoint{net::Ipv4Addr(1, 1, 1, 1), 1};
  return c;
}

// ----------------------------------------------------------- ConnectionTable

TEST(ConnectionTable, AddRemoveFind) {
  ConnectionTable table(Address{100});
  EXPECT_TRUE(table.add(make_conn(200, ConnectionType::kLeaf)));
  EXPECT_FALSE(table.add(make_conn(200, ConnectionType::kLeaf)));  // dup
  EXPECT_TRUE(table.contains(Address{200}));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.remove(Address{200}));
  EXPECT_FALSE(table.remove(Address{200}));
  EXPECT_TRUE(table.empty());
}

TEST(ConnectionTable, TypeUpgradesByRetentionPriority) {
  ConnectionTable table(Address{100});
  table.add(make_conn(200, ConnectionType::kLeaf));
  table.add(make_conn(200, ConnectionType::kStructuredNear));
  EXPECT_EQ(table.find(Address{200})->type,
            ConnectionType::kStructuredNear);
  // Downgrade attempts are ignored.
  table.add(make_conn(200, ConnectionType::kShortcut));
  EXPECT_EQ(table.find(Address{200})->type,
            ConnectionType::kStructuredNear);
}

TEST(ConnectionTable, NeighborsInRingOrder) {
  ConnectionTable table(Address{1000});
  table.add(make_conn(1100, ConnectionType::kStructuredNear));  // right
  table.add(make_conn(900, ConnectionType::kStructuredNear));   // left
  table.add(make_conn(5000, ConnectionType::kStructuredFar));
  ASSERT_NE(table.right_neighbor(), nullptr);
  EXPECT_EQ(table.right_neighbor()->addr, Address{1100});
  ASSERT_NE(table.left_neighbor(), nullptr);
  EXPECT_EQ(table.left_neighbor()->addr, Address{900});

  auto right2 = table.right_neighbors(2);
  ASSERT_EQ(right2.size(), 2u);
  EXPECT_EQ(right2[0]->addr, Address{1100});
  EXPECT_EQ(right2[1]->addr, Address{5000});
}

TEST(ConnectionTable, ClosestToRequiresStrictProgress) {
  ConnectionTable table(Address{1000});
  table.add(make_conn(5000, ConnectionType::kStructuredFar));
  // We are closer to 1200 than the 5000 connection: deliver locally.
  EXPECT_EQ(table.closest_to(Address{1200}), nullptr);
  // The connection is closer to 4900.
  ASSERT_NE(table.closest_to(Address{4900}), nullptr);
  EXPECT_EQ(table.closest_to(Address{4900})->addr, Address{5000});
}

TEST(ConnectionTable, ClosestToHonorsExclusion) {
  ConnectionTable table(Address{1000});
  table.add(make_conn(4900, ConnectionType::kStructuredFar));
  Address excluded{4900};
  EXPECT_EQ(table.closest_to(Address{4900}, &excluded), nullptr);
}

TEST(ConnectionTable, SuccessorAndPredecessorOfArbitraryPosition) {
  ConnectionTable table(Address{0});
  table.add(make_conn(100, ConnectionType::kStructuredFar));
  table.add(make_conn(300, ConnectionType::kStructuredFar));
  table.add(make_conn(700, ConnectionType::kStructuredFar));

  EXPECT_EQ(table.successor_of(Address{200})->addr, Address{300});
  EXPECT_EQ(table.predecessor_of(Address{200})->addr, Address{100});
  // A peer exactly at the position is skipped.
  EXPECT_EQ(table.successor_of(Address{300})->addr, Address{700});
  // Wrap-around: successor of 800 is 100.
  EXPECT_EQ(table.successor_of(Address{800})->addr, Address{100});
  EXPECT_EQ(table.predecessor_of(Address{50})->addr, Address{700});
}

// ---------------------------------------------------------- ShortcutOverlord

struct OverlordHarness {
  explicit OverlordHarness(ShortcutOverlord::Config config) {
    requested.clear();
    overlord = std::make_unique<ShortcutOverlord>(
        config,
        ShortcutOverlord::Hooks{
            [this](const Address& a) { return connected.count(a) != 0; },
            [this](const Address& a) { return linking.count(a) != 0; },
            [this] { return shortcut_count; },
            [this](const Address& a) { requested.push_back(a); },
        });
  }

  std::set<Address> connected;
  std::set<Address> linking;
  std::size_t shortcut_count = 0;
  std::vector<Address> requested;
  std::unique_ptr<ShortcutOverlord> overlord;
};

TEST(ShortcutOverlord, PaperRecurrenceTriggersAtThreshold) {
  ShortcutOverlord::Config cfg;
  cfg.threshold = 5.0;
  cfg.service_rate = 1.0;
  OverlordHarness h(cfg);
  Address peer{42};
  // 2 packets/s, leak 1/s -> net +1/s; threshold 5 crossed at ~5 s.
  SimTime t = 0;
  for (int i = 0; i < 20 && h.requested.empty(); ++i) {
    h.overlord->on_traffic(peer, t);
    h.overlord->on_traffic(peer, t);
    t += kSecond;
  }
  ASSERT_EQ(h.requested.size(), 1u);
  EXPECT_EQ(h.requested[0], peer);
  EXPECT_LE(t, 8 * kSecond);
}

TEST(ShortcutOverlord, ScoreLeaksWhileIdle) {
  ShortcutOverlord::Config cfg;
  cfg.service_rate = 1.0;
  cfg.threshold = 1e9;
  OverlordHarness h(cfg);
  Address peer{7};
  for (int i = 0; i < 10; ++i) h.overlord->on_traffic(peer, i * 100);
  double busy = h.overlord->score_of(peer, kSecond);
  // After 60 idle seconds the queue has fully drained.
  EXPECT_GT(busy, 5.0);
  EXPECT_DOUBLE_EQ(h.overlord->score_of(peer, 61 * kSecond), 0.0);
}

TEST(ShortcutOverlord, SuppressedWhenConnectedOrLinking) {
  ShortcutOverlord::Config cfg;
  cfg.threshold = 2.0;
  OverlordHarness h(cfg);
  Address peer{9};
  h.connected.insert(peer);
  for (int i = 0; i < 10; ++i) h.overlord->on_traffic(peer, i * kSecond);
  EXPECT_TRUE(h.requested.empty());

  h.connected.clear();
  h.linking.insert(peer);
  for (int i = 10; i < 20; ++i) h.overlord->on_traffic(peer, i * kSecond);
  EXPECT_TRUE(h.requested.empty());

  h.linking.clear();
  h.overlord->on_traffic(peer, 21 * kSecond);
  EXPECT_EQ(h.requested.size(), 1u);
}

TEST(ShortcutOverlord, RespectsMaxShortcutsAndCooldown) {
  ShortcutOverlord::Config cfg;
  cfg.threshold = 1.0;
  cfg.max_shortcuts = 1;
  cfg.retry_cooldown = 10 * kSecond;
  OverlordHarness h(cfg);

  h.shortcut_count = 1;  // at the cap
  h.overlord->on_traffic(Address{1}, kSecond);
  h.overlord->on_traffic(Address{1}, 2 * kSecond);
  EXPECT_TRUE(h.requested.empty());

  h.shortcut_count = 0;
  h.overlord->on_traffic(Address{1}, 3 * kSecond);
  EXPECT_EQ(h.requested.size(), 1u);
  // Within the cooldown no second CTM is fired at the same peer.
  h.overlord->on_traffic(Address{1}, 4 * kSecond);
  EXPECT_EQ(h.requested.size(), 1u);
  h.overlord->on_traffic(Address{1}, 14 * kSecond);
  EXPECT_EQ(h.requested.size(), 2u);
}

TEST(ShortcutOverlord, DisabledNeverRequests) {
  ShortcutOverlord::Config cfg;
  cfg.enabled = false;
  cfg.threshold = 1.0;
  OverlordHarness h(cfg);
  for (int i = 0; i < 50; ++i) h.overlord->on_traffic(Address{5}, i * kSecond);
  EXPECT_TRUE(h.requested.empty());
}

TEST(ShortcutOverlord, SweepExpiresIdleEntries) {
  ShortcutOverlord::Config cfg;
  cfg.entry_expiry = kMinute;
  cfg.threshold = 1e9;
  OverlordHarness h(cfg);
  h.overlord->on_traffic(Address{5}, 0);
  h.overlord->sweep(2 * kMinute);
  EXPECT_DOUBLE_EQ(h.overlord->score_of(Address{5}, 2 * kMinute), 0.0);
}

// -------------------------------------------------------------- LinkingEngine

/// Two public hosts + engines wired together through a real simulated
/// network, so retries, timeouts and races run for real.  The engines
/// talk through the EdgeFactory seam (net::SimEdgeFactory here), the
/// same one the node uses.
struct LinkPair {
  LinkPair() : sim(5), network(sim) {
    auto site = network.add_site("s");
    host_a = &network.add_host(net::Ipv4Addr(128, 0, 0, 1),
                               net::Network::kInternet, site, {});
    host_b = &network.add_host(net::Ipv4Addr(128, 0, 0, 2),
                               net::Network::kInternet, site, {});
    ta = std::make_unique<net::SimEdgeFactory>(network, *host_a);
    tb = std::make_unique<net::SimEdgeFactory>(network, *host_b);
    ta->bind(1700);
    tb->bind(1700);
    addr_a = Address{100};
    addr_b = Address{200};
    ea = make_engine(*ta, addr_a, established_a);
    eb = make_engine(*tb, addr_b, established_b);
    ta->set_receiver([this](const net::Endpoint& from, SharedBytes data) {
      auto f = LinkFrame::parse(data.view());
      if (f) ea->handle_frame(*f, from);
    });
    tb->set_receiver([this](const net::Endpoint& from, SharedBytes data) {
      auto f = LinkFrame::parse(data.view());
      if (f) eb->handle_frame(*f, from);
    });
  }

  std::unique_ptr<LinkingEngine> make_engine(
      p2p::EdgeFactory& edges, Address self,
      std::vector<Address>& established) {
    LinkConfig cfg;
    cfg.initial_rto = 500 * kMillisecond;
    cfg.max_retries = 2;
    return std::make_unique<LinkingEngine>(
        sim, sim.rng(), sim.trace(), edges, self, cfg,
        LinkingEngine::Callbacks{
            [&established](const Address& peer,
                           const std::vector<transport::Uri>&,
                           const net::Endpoint&, ConnectionType) {
              established.push_back(peer);
            },
            [](const Address&, ConnectionType) {},
            [](const transport::Uri&) {},
            [&established](const Address& peer) {
              return std::find(established.begin(), established.end(),
                               peer) != established.end();
            },
        });
  }

  [[nodiscard]] transport::Uri uri_of(net::Host& h) const {
    return transport::Uri{transport::TransportKind::kUdp,
                          net::Endpoint{h.ip(), 1700}};
  }

  sim::Simulator sim;
  net::Network network;
  net::Host* host_a;
  net::Host* host_b;
  std::unique_ptr<net::SimEdgeFactory> ta, tb;
  Address addr_a, addr_b;
  std::vector<Address> established_a, established_b;
  std::unique_ptr<LinkingEngine> ea, eb;
};

TEST(LinkingEngine, DirectHandshakeSucceedsBothSides) {
  LinkPair pair;
  pair.ea->start(pair.addr_b, ConnectionType::kStructuredNear,
                 {pair.uri_of(*pair.host_b)});
  pair.sim.run_for(5 * kSecond);
  ASSERT_EQ(pair.established_a.size(), 1u);
  EXPECT_EQ(pair.established_a[0], pair.addr_b);
  ASSERT_EQ(pair.established_b.size(), 1u);
  EXPECT_EQ(pair.established_b[0], pair.addr_a);
  EXPECT_EQ(pair.ea->stats().established_active, 1u);
  EXPECT_EQ(pair.eb->stats().established_passive, 1u);
}

TEST(LinkingEngine, DeadUriFailsOverToNext) {
  LinkPair pair;
  // A dead PUBLIC address: stays first under public-first ordering, so
  // the failover schedule is what burns the time.
  transport::Uri dead{transport::TransportKind::kUdp,
                      net::Endpoint{net::Ipv4Addr(128, 9, 9, 9), 1}};
  pair.ea->start(pair.addr_b, ConnectionType::kShortcut,
                 {dead, pair.uri_of(*pair.host_b)});
  // Dead URI burns initial_rto * (2^(retries+1) - 1) = 0.5 * 7 = 3.5 s.
  pair.sim.run_for(2 * kSecond);
  EXPECT_TRUE(pair.established_a.empty());
  pair.sim.run_for(10 * kSecond);
  ASSERT_EQ(pair.established_a.size(), 1u);
  EXPECT_EQ(pair.ea->stats().uri_failovers, 1u);
}

TEST(LinkingEngine, AllUrisDeadReportsFailure) {
  LinkPair pair;
  bool failed = false;
  // Rebuild engine a with a failure probe.
  LinkConfig cfg;
  cfg.initial_rto = 200 * kMillisecond;
  cfg.max_retries = 1;
  LinkingEngine engine(
      pair.sim, pair.sim.rng(), pair.sim.trace(), *pair.ta, pair.addr_a, cfg,
      LinkingEngine::Callbacks{
          [](const Address&, const std::vector<transport::Uri>&,
             const net::Endpoint&, ConnectionType) {},
          [&failed](const Address&, ConnectionType) { failed = true; },
          [](const transport::Uri&) {},
          [](const Address&) { return false; },
      });
  transport::Uri dead{transport::TransportKind::kUdp,
                      net::Endpoint{net::Ipv4Addr(10, 9, 9, 9), 1}};
  engine.start(pair.addr_b, ConnectionType::kShortcut, {dead});
  pair.sim.run_for(kMinute);
  EXPECT_TRUE(failed);
  EXPECT_FALSE(engine.attempting(pair.addr_b));
}

TEST(LinkingEngine, SimultaneousAttemptsConverge) {
  LinkPair pair;
  pair.ea->start(pair.addr_b, ConnectionType::kStructuredNear,
                 {pair.uri_of(*pair.host_b)});
  pair.eb->start(pair.addr_a, ConnectionType::kStructuredNear,
                 {pair.uri_of(*pair.host_a)});
  pair.sim.run_for(30 * kSecond);
  EXPECT_EQ(pair.established_a.size(), 1u);
  EXPECT_EQ(pair.established_b.size(), 1u);
}

TEST(LinkingEngine, PublicUriOrderedFirst) {
  LinkPair pair;
  // Give A a list with the private URI first; the engine must reorder
  // so the public URI is tried first (the paper's behaviour).
  transport::Uri priv{transport::TransportKind::kUdp,
                      net::Endpoint{net::Ipv4Addr(192, 168, 0, 9), 1}};
  pair.ea->start(pair.addr_b, ConnectionType::kShortcut,
                 {priv, pair.uri_of(*pair.host_b)});
  // If the public URI goes first the handshake completes immediately
  // (well inside the dead-URI timeout of 3.5 s).
  pair.sim.run_for(kSecond);
  EXPECT_EQ(pair.established_a.size(), 1u);
}

// ------------------------------------------- RTT estimator + relay merges

TEST(Connection, RttEstimatorFollowsRfc6298) {
  Connection c;
  EXPECT_EQ(c.rto(100, 1000), 1000);  // no sample: max_rto
  c.rtt_sample(80);
  EXPECT_EQ(c.srtt, 80);
  EXPECT_EQ(c.rttvar, 40);
  // Second sample: rttvar = (3*40 + |80-120|)/4 = 40, srtt = (7*80+120)/8.
  c.rtt_sample(120);
  EXPECT_EQ(c.rttvar, 40);
  EXPECT_EQ(c.srtt, 85);
  // Negative samples (clock weirdness) are ignored.
  c.rtt_sample(-5);
  EXPECT_EQ(c.srtt, 85);
}

TEST(Connection, RtoClampsToBounds) {
  Connection c;
  c.rtt_sample(10);  // srtt 10, rttvar 5 -> raw rto 30
  EXPECT_EQ(c.rto(100, 1000), 100);   // clamped up
  EXPECT_EQ(c.rto(1, 20), 20);        // clamped down
  EXPECT_EQ(c.rto(1, 1000), 30);      // in range
}

TEST(ConnectionTable, RelayRefreshNeverClobbersDirectEndpoint) {
  ConnectionTable table(Address{100});
  table.add(make_conn(200, ConnectionType::kStructuredNear));

  Connection relay = make_conn(200, ConnectionType::kRelay);
  relay.remote = net::Endpoint{net::Ipv4Addr(9, 9, 9, 9), 9};  // agent
  relay.relay = Address{300};
  table.add(relay);

  const Connection* c = table.find(Address{200});
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(c->is_relay());
  EXPECT_EQ(c->remote, (net::Endpoint{net::Ipv4Addr(1, 1, 1, 1), 1}));
  EXPECT_EQ(c->type, ConnectionType::kStructuredNear);
}

TEST(ConnectionTable, DirectAddSupersedesRelayTunnel) {
  ConnectionTable table(Address{100});
  Connection relay = make_conn(200, ConnectionType::kRelay);
  relay.remote = net::Endpoint{net::Ipv4Addr(9, 9, 9, 9), 9};
  relay.relay = Address{300};
  table.add(relay);
  ASSERT_TRUE(table.find(Address{200})->is_relay());

  // The relay->direct upgrade: a direct near add replaces the tunnel.
  table.add(make_conn(200, ConnectionType::kStructuredNear));
  const Connection* c = table.find(Address{200});
  EXPECT_FALSE(c->is_relay());
  EXPECT_EQ(c->relay, Address{});
  EXPECT_EQ(c->remote, (net::Endpoint{net::Ipv4Addr(1, 1, 1, 1), 1}));
  EXPECT_EQ(c->type, ConnectionType::kStructuredNear);
}

TEST(ConnectionTable, EstimatorSurvivesRefresh) {
  ConnectionTable table(Address{100});
  table.add(make_conn(200, ConnectionType::kLeaf));
  table.find(Address{200})->rtt_sample(500);
  // A role upgrade (refresh through add) must not reset the estimator.
  table.add(make_conn(200, ConnectionType::kStructuredNear));
  EXPECT_EQ(table.find(Address{200})->srtt, 500);
}

TEST(ConnectionTable, RelayRanksAboveLeafBelowShortcut) {
  ConnectionTable table(Address{100});
  table.add(make_conn(200, ConnectionType::kLeaf));
  table.add(make_conn(200, ConnectionType::kRelay));
  EXPECT_EQ(table.find(Address{200})->type, ConnectionType::kRelay);
  table.add(make_conn(200, ConnectionType::kShortcut));
  EXPECT_EQ(table.find(Address{200})->type, ConnectionType::kShortcut);
}

TEST(LinkingEngine, SimultaneousInitiatorsUnderLossConverge) {
  LinkPair pair;
  // 30% loss on the only path: retransmissions and the race-break have
  // to grind through it, but both sides must still converge.
  pair.network.set_same_site(
      net::LinkModel{5 * kMillisecond, kMillisecond, 0.30});
  // Both sides re-initiate whenever their attempt dies, the way the
  // node's maintenance tick does.
  for (int tick = 0; tick < 24; ++tick) {
    if (pair.established_a.empty() && !pair.ea->attempting(pair.addr_b)) {
      pair.ea->start(pair.addr_b, ConnectionType::kStructuredNear,
                     {pair.uri_of(*pair.host_b)});
    }
    if (pair.established_b.empty() && !pair.eb->attempting(pair.addr_a)) {
      pair.eb->start(pair.addr_a, ConnectionType::kStructuredNear,
                     {pair.uri_of(*pair.host_a)});
    }
    pair.sim.run_for(5 * kSecond);
  }
  EXPECT_FALSE(pair.established_a.empty());
  EXPECT_FALSE(pair.established_b.empty());
  EXPECT_FALSE(pair.ea->attempting(pair.addr_b));
  EXPECT_FALSE(pair.eb->attempting(pair.addr_a));
}

TEST(LinkingEngine, MergesFreshUrisIntoActiveAttempt) {
  LinkPair pair;
  transport::Uri dead{transport::TransportKind::kUdp,
                      net::Endpoint{net::Ipv4Addr(10, 9, 9, 9), 1}};
  pair.ea->start(pair.addr_b, ConnectionType::kShortcut, {dead});
  pair.sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(pair.ea->attempting(pair.addr_b));
  // Fresh knowledge arrives (e.g. from a CTM): a working public URI.
  // It must be promoted ahead of the dead private one.
  pair.ea->start(pair.addr_b, ConnectionType::kShortcut,
                 {pair.uri_of(*pair.host_b)});
  pair.sim.run_for(2 * kSecond);
  EXPECT_EQ(pair.established_a.size(), 1u);
}

}  // namespace
}  // namespace wow::p2p
