#include <gtest/gtest.h>

#include "common/rng.h"
#include "p2p/packet.h"
#include "transport/uri.h"

namespace wow::p2p {
namespace {

using transport::TransportKind;
using transport::Uri;

Uri uri_of(std::uint8_t n, std::uint16_t port) {
  return Uri{TransportKind::kUdp,
             net::Endpoint{net::Ipv4Addr(10, 0, 0, n), port}};
}

TEST(UriText, RoundTrip) {
  Uri u = uri_of(5, 1024);
  EXPECT_EQ(u.to_string(), "brunet.udp://10.0.0.5:1024");
  auto parsed = Uri::parse(u.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, u);
}

TEST(UriText, ParsesTcpScheme) {
  auto parsed = Uri::parse("brunet.tcp://192.0.1.1:1024");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, TransportKind::kTcp);
  EXPECT_EQ(parsed->endpoint.port, 1024);
}

TEST(UriText, RejectsMalformed) {
  EXPECT_FALSE(Uri::parse("http://10.0.0.1:80").has_value());
  EXPECT_FALSE(Uri::parse("brunet.udp://10.0.0.1").has_value());
  EXPECT_FALSE(Uri::parse("brunet.udp://10.0.0:80").has_value());
  EXPECT_FALSE(Uri::parse("brunet.udp://10.0.0.1:99999").has_value());
  EXPECT_FALSE(Uri::parse("brunet.udp://10.0.0.1:").has_value());
  EXPECT_FALSE(Uri::parse("").has_value());
}

TEST(UriWire, ListRoundTrip) {
  std::vector<Uri> uris{uri_of(1, 100), uri_of(2, 200), uri_of(3, 300)};
  ByteWriter w;
  transport::write_uri_list(w, uris);
  ByteReader r(w.bytes());
  auto parsed = transport::read_uri_list(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, uris);
}

TEST(RoutedPacketWire, RoundTrip) {
  Rng rng(17);
  RoutedPacket p;
  p.src = rng.ring_id();
  p.dst = rng.ring_id();
  p.via = rng.ring_id();
  p.ttl = 12;
  p.hops = 3;
  p.mode = DeliveryMode::kNearest;
  p.bounced = true;
  p.type = RoutedType::kCtmRequest;
  p.trace_id = 0xfeedfacecafef00dull;
  p.set_payload(Bytes{9, 8, 7, 6});

  auto frame = p.serialize();
  EXPECT_EQ(frame_kind(frame), FrameKind::kRouted);
  auto q = RoutedPacket::parse(BytesView(frame));
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->src, p.src);
  EXPECT_EQ(q->dst, p.dst);
  EXPECT_EQ(q->via, p.via);
  EXPECT_EQ(q->ttl, p.ttl);
  EXPECT_EQ(q->hops, p.hops);
  EXPECT_EQ(q->mode, p.mode);
  EXPECT_EQ(q->bounced, p.bounced);
  EXPECT_EQ(q->type, p.type);
  EXPECT_EQ(q->trace_id, p.trace_id);
  EXPECT_EQ(Bytes(q->payload().begin(), q->payload().end()),
            (Bytes{9, 8, 7, 6}));
}

TEST(RoutedPacketWire, RejectsTruncated) {
  RoutedPacket p;
  auto frame = p.serialize();
  for (std::size_t cut = 1; cut < frame.size(); cut += 7) {
    auto truncated =
        std::span<const std::uint8_t>(frame.data(), frame.size() - cut);
    // Truncating into the header must fail structurally; payload
    // truncation is caught by the frame checksum and asserted in the
    // fuzz suite.
    if (frame.size() - cut < RoutedPacket::kHeaderBytes) {
      EXPECT_FALSE(RoutedPacket::parse(truncated).has_value());
    }
  }
}

TEST(RoutedPacketWire, RejectsWrongKind) {
  LinkFrame f;
  f.sender = RingId{1};
  EXPECT_FALSE(RoutedPacket::parse(f.serialize()).has_value());
}

TEST(CtmWire, RequestRoundTrip) {
  Rng rng(23);
  CtmRequest req;
  req.con_type = ConnectionType::kStructuredNear;
  req.token = 777;
  req.forwarder = rng.ring_id();
  req.uris = {uri_of(1, 10), uri_of(2, 20)};
  auto parsed = CtmRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->con_type, req.con_type);
  EXPECT_EQ(parsed->token, req.token);
  EXPECT_EQ(parsed->forwarder, req.forwarder);
  EXPECT_EQ(parsed->uris, req.uris);
}

TEST(CtmWire, ReplyRoundTripWithHints) {
  Rng rng(29);
  CtmReply rep;
  rep.con_type = ConnectionType::kShortcut;
  rep.token = 31337;
  rep.uris = {uri_of(3, 30)};
  rep.neighbors.push_back(NeighborHint{rng.ring_id(), {uri_of(4, 40)}});
  rep.neighbors.push_back(
      NeighborHint{rng.ring_id(), {uri_of(5, 50), uri_of(6, 60)}});
  auto parsed = CtmReply::parse(rep.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->token, rep.token);
  ASSERT_EQ(parsed->neighbors.size(), 2u);
  EXPECT_EQ(parsed->neighbors[0].addr, rep.neighbors[0].addr);
  EXPECT_EQ(parsed->neighbors[1].uris, rep.neighbors[1].uris);
}

TEST(LinkFrameWire, RoundTrip) {
  Rng rng(31);
  LinkFrame f;
  f.type = LinkType::kReply;
  f.sender = rng.ring_id();
  f.con_type = ConnectionType::kStructuredFar;
  f.token = 99;
  f.observed = net::Endpoint{net::Ipv4Addr(150, 1, 2, 3), 20001};
  f.uris = {uri_of(7, 70)};

  auto frame = f.serialize();
  EXPECT_EQ(frame_kind(frame), FrameKind::kLink);
  auto g = LinkFrame::parse(frame);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->type, f.type);
  EXPECT_EQ(g->sender, f.sender);
  EXPECT_EQ(g->con_type, f.con_type);
  EXPECT_EQ(g->token, f.token);
  EXPECT_EQ(g->observed, f.observed);
  EXPECT_EQ(g->uris, f.uris);
}

TEST(LinkFrameWire, RejectsGarbage) {
  Bytes junk{0x77, 0x01, 0x02};
  EXPECT_FALSE(LinkFrame::parse(junk).has_value());
  EXPECT_FALSE(frame_kind(junk).has_value());
  EXPECT_FALSE(frame_kind({}).has_value());
}

class AllLinkTypes : public ::testing::TestWithParam<LinkType> {};

TEST_P(AllLinkTypes, SurvivesRoundTrip) {
  LinkFrame f;
  f.type = GetParam();
  f.sender = RingId{42};
  auto g = LinkFrame::parse(f.serialize());
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->type, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Wire, AllLinkTypes,
                         ::testing::Values(LinkType::kRequest,
                                           LinkType::kReply, LinkType::kError,
                                           LinkType::kPing, LinkType::kPong,
                                           LinkType::kClose));

}  // namespace
}  // namespace wow::p2p
