#include <gtest/gtest.h>

#include "ipop/icmp_service.h"
#include "ipop/ip_packet.h"
#include "ipop/ipop_node.h"
#include "test_util.h"

namespace wow::ipop {
namespace {

using testing::IpopOverlay;

TEST(IpPacketWire, RoundTrip) {
  IpPacket p;
  p.src = net::Ipv4Addr(172, 16, 1, 2);
  p.dst = net::Ipv4Addr(172, 16, 1, 3);
  p.proto = IpProto::kTcp;
  p.ttl = 61;
  p.id = 999;
  p.payload = Bytes{5, 6, 7};
  auto q = IpPacket::parse(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->src, p.src);
  EXPECT_EQ(q->dst, p.dst);
  EXPECT_EQ(q->proto, p.proto);
  EXPECT_EQ(q->ttl, p.ttl);
  EXPECT_EQ(q->id, p.id);
  EXPECT_EQ(q->payload, p.payload);
}

TEST(IpPacketWire, RejectsBadProtocolAndTruncation) {
  IpPacket p;
  p.payload = Bytes{1, 2, 3};
  auto frame = p.serialize();
  frame[0] = 99;  // bogus protocol
  EXPECT_FALSE(IpPacket::parse(frame).has_value());

  auto frame2 = p.serialize();
  frame2.resize(frame2.size() - 2);  // payload shorter than declared
  EXPECT_FALSE(IpPacket::parse(frame2).has_value());
}

TEST(IcmpWire, RoundTrip) {
  IcmpEcho e;
  e.type = IcmpEcho::kEchoReply;
  e.ident = 7;
  e.seq = 120;
  e.timestamp = 123456789;
  e.padding = 56;
  auto out = e.serialize();
  EXPECT_EQ(out.size(), 16u + 56u);  // header + padding bytes on the wire
  auto f = IcmpEcho::parse(out);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->ident, e.ident);
  EXPECT_EQ(f->seq, e.seq);
  EXPECT_EQ(f->timestamp, e.timestamp);
}

TEST(VipResolution, DeterministicAndDistinct) {
  auto a1 = address_for_vip(net::Ipv4Addr(172, 16, 1, 2));
  auto a2 = address_for_vip(net::Ipv4Addr(172, 16, 1, 2));
  auto b = address_for_vip(net::Ipv4Addr(172, 16, 1, 3));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_NE(a1, p2p::Address{});
}

TEST(IpopTunnel, PingAcrossOverlay) {
  IpopOverlay net(4);
  net.start_all();
  net.sim.run_until(kMinute);

  IcmpService icmp0(*net.nodes[0]);
  IcmpService icmp2(*net.nodes[2]);

  int replies = 0;
  SimDuration last_rtt = 0;
  icmp0.set_reply_handler([&](net::Ipv4Addr from, std::uint16_t,
                              std::uint16_t, SimDuration rtt) {
    EXPECT_EQ(from, net.vip(2));
    ++replies;
    last_rtt = rtt;
  });

  icmp0.ping(net.vip(2), 1, 1);
  net.sim.run_for(10 * kSecond);
  EXPECT_EQ(replies, 1);
  EXPECT_GT(last_rtt, 0);
}

TEST(IpopTunnel, LoopbackPing) {
  IpopOverlay net(2);
  net.start_all();
  net.sim.run_until(30 * kSecond);

  IcmpService icmp(*net.nodes[0]);
  int replies = 0;
  icmp.set_reply_handler([&](net::Ipv4Addr, std::uint16_t, std::uint16_t,
                             SimDuration) { ++replies; });
  icmp.ping(net.vip(0), 1, 1);
  net.sim.run_for(kSecond);
  EXPECT_EQ(replies, 1);
}

TEST(IpopTunnel, UnknownVipIsDropped) {
  IpopOverlay net(3);
  net.start_all();
  net.sim.run_until(kMinute);

  IcmpService icmp(*net.nodes[0]);
  int replies = 0;
  icmp.set_reply_handler([&](net::Ipv4Addr, std::uint16_t, std::uint16_t,
                             SimDuration) { ++replies; });
  icmp.ping(net::Ipv4Addr(172, 16, 1, 200), 1, 1);  // nobody owns this
  net.sim.run_for(10 * kSecond);
  EXPECT_EQ(replies, 0);
}

TEST(IpopTunnel, PacketsDroppedWhileSenderNotJoined) {
  IpopOverlay net(3);
  // Start everyone but node 0.
  net.router->start();
  net.nodes[1]->start();
  net.nodes[2]->start();
  net.sim.run_until(kMinute);

  IcmpService icmp0(*net.nodes[0]);
  IcmpService icmp1(*net.nodes[1]);
  (void)icmp1;  // its constructor installs the echo responder

  int replies = 0;
  icmp0.set_reply_handler([&](net::Ipv4Addr, std::uint16_t, std::uint16_t,
                              SimDuration) { ++replies; });

  // Node 0's IPOP is down: sends vanish (regime 1 of Fig. 5).
  icmp0.ping(net.vip(1), 1, 1);
  net.sim.run_for(5 * kSecond);
  EXPECT_EQ(replies, 0);

  // Bring node 0 up; once routable, pings succeed.
  net.nodes[0]->start();
  net.sim.run_for(kMinute);
  icmp0.ping(net.vip(1), 1, 2);
  net.sim.run_for(10 * kSecond);
  EXPECT_EQ(replies, 1);
}

TEST(IpopTunnel, StatsCountTunnelledPackets) {
  IpopOverlay net(2);
  net.start_all();
  net.sim.run_until(kMinute);
  IcmpService icmp0(*net.nodes[0]);
  IcmpService icmp1(*net.nodes[1]);
  (void)icmp1;
  icmp0.ping(net.vip(1), 1, 1);
  net.sim.run_for(5 * kSecond);
  EXPECT_GE(net.nodes[0]->stats().sent, 1u);
  EXPECT_GE(net.nodes[1]->stats().received, 1u);
  EXPECT_GE(net.nodes[0]->stats().received, 1u);  // the reply
}

}  // namespace
}  // namespace wow::ipop
