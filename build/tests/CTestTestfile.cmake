# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;wow_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;wow_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;wow_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(p2p_packet_test "/root/repo/build/tests/p2p_packet_test")
set_tests_properties(p2p_packet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;wow_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(p2p_ring_test "/root/repo/build/tests/p2p_ring_test")
set_tests_properties(p2p_ring_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;wow_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ipop_test "/root/repo/build/tests/ipop_test")
set_tests_properties(ipop_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;27;wow_test_full;/root/repo/tests/CMakeLists.txt;0;")
add_test(vtcp_test "/root/repo/build/tests/vtcp_test")
set_tests_properties(vtcp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;28;wow_test_full;/root/repo/tests/CMakeLists.txt;0;")
add_test(testbed_test "/root/repo/build/tests/testbed_test")
set_tests_properties(testbed_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;40;wow_test_bed;/root/repo/tests/CMakeLists.txt;0;")
add_test(middleware_test "/root/repo/build/tests/middleware_test")
set_tests_properties(middleware_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;48;add_test;/root/repo/tests/CMakeLists.txt;51;wow_test_mw;/root/repo/tests/CMakeLists.txt;0;")
add_test(p2p_unit_test "/root/repo/build/tests/p2p_unit_test")
set_tests_properties(p2p_unit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;52;wow_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(resilience_test "/root/repo/build/tests/resilience_test")
set_tests_properties(resilience_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;53;wow_test_full;/root/repo/tests/CMakeLists.txt;0;")
add_test(determinism_test "/root/repo/build/tests/determinism_test")
set_tests_properties(determinism_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;54;wow_test_bed;/root/repo/tests/CMakeLists.txt;0;")
