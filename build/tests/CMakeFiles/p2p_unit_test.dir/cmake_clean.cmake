file(REMOVE_RECURSE
  "CMakeFiles/p2p_unit_test.dir/p2p_unit_test.cpp.o"
  "CMakeFiles/p2p_unit_test.dir/p2p_unit_test.cpp.o.d"
  "p2p_unit_test"
  "p2p_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
