file(REMOVE_RECURSE
  "CMakeFiles/p2p_packet_test.dir/p2p_packet_test.cpp.o"
  "CMakeFiles/p2p_packet_test.dir/p2p_packet_test.cpp.o.d"
  "p2p_packet_test"
  "p2p_packet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
