# Empty dependencies file for vtcp_test.
# This may be replaced when dependencies are built.
