file(REMOVE_RECURSE
  "CMakeFiles/vtcp_test.dir/vtcp_test.cpp.o"
  "CMakeFiles/vtcp_test.dir/vtcp_test.cpp.o.d"
  "vtcp_test"
  "vtcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vtcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
