file(REMOVE_RECURSE
  "CMakeFiles/ipop_test.dir/ipop_test.cpp.o"
  "CMakeFiles/ipop_test.dir/ipop_test.cpp.o.d"
  "ipop_test"
  "ipop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
