# Empty compiler generated dependencies file for ipop_test.
# This may be replaced when dependencies are built.
