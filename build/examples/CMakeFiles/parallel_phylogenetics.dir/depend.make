# Empty dependencies file for parallel_phylogenetics.
# This may be replaced when dependencies are built.
