file(REMOVE_RECURSE
  "CMakeFiles/parallel_phylogenetics.dir/parallel_phylogenetics.cpp.o"
  "CMakeFiles/parallel_phylogenetics.dir/parallel_phylogenetics.cpp.o.d"
  "parallel_phylogenetics"
  "parallel_phylogenetics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_phylogenetics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
