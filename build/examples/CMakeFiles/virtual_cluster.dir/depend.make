# Empty dependencies file for virtual_cluster.
# This may be replaced when dependencies are built.
