# Empty dependencies file for join_cdf.
# This may be replaced when dependencies are built.
