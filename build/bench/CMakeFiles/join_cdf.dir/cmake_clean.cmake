file(REMOVE_RECURSE
  "CMakeFiles/join_cdf.dir/join_cdf.cpp.o"
  "CMakeFiles/join_cdf.dir/join_cdf.cpp.o.d"
  "join_cdf"
  "join_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
