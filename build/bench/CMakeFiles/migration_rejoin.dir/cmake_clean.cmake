file(REMOVE_RECURSE
  "CMakeFiles/migration_rejoin.dir/migration_rejoin.cpp.o"
  "CMakeFiles/migration_rejoin.dir/migration_rejoin.cpp.o.d"
  "migration_rejoin"
  "migration_rejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_rejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
