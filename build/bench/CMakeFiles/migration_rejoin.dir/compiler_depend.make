# Empty compiler generated dependencies file for migration_rejoin.
# This may be replaced when dependencies are built.
