file(REMOVE_RECURSE
  "CMakeFiles/fig5_regimes.dir/fig5_regimes.cpp.o"
  "CMakeFiles/fig5_regimes.dir/fig5_regimes.cpp.o.d"
  "fig5_regimes"
  "fig5_regimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_regimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
