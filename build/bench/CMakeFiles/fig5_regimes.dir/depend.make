# Empty dependencies file for fig5_regimes.
# This may be replaced when dependencies are built.
