# Empty dependencies file for fig6_scp_migration.
# This may be replaced when dependencies are built.
