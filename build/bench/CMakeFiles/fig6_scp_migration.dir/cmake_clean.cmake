file(REMOVE_RECURSE
  "CMakeFiles/fig6_scp_migration.dir/fig6_scp_migration.cpp.o"
  "CMakeFiles/fig6_scp_migration.dir/fig6_scp_migration.cpp.o.d"
  "fig6_scp_migration"
  "fig6_scp_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scp_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
