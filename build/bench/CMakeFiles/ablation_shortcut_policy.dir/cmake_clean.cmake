file(REMOVE_RECURSE
  "CMakeFiles/ablation_shortcut_policy.dir/ablation_shortcut_policy.cpp.o"
  "CMakeFiles/ablation_shortcut_policy.dir/ablation_shortcut_policy.cpp.o.d"
  "ablation_shortcut_policy"
  "ablation_shortcut_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shortcut_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
