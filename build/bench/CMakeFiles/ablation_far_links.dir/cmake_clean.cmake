file(REMOVE_RECURSE
  "CMakeFiles/ablation_far_links.dir/ablation_far_links.cpp.o"
  "CMakeFiles/ablation_far_links.dir/ablation_far_links.cpp.o.d"
  "ablation_far_links"
  "ablation_far_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_far_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
