# Empty compiler generated dependencies file for ablation_far_links.
# This may be replaced when dependencies are built.
