file(REMOVE_RECURSE
  "CMakeFiles/table2_bandwidth.dir/table2_bandwidth.cpp.o"
  "CMakeFiles/table2_bandwidth.dir/table2_bandwidth.cpp.o.d"
  "table2_bandwidth"
  "table2_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
