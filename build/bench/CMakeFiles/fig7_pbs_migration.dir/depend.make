# Empty dependencies file for fig7_pbs_migration.
# This may be replaced when dependencies are built.
