file(REMOVE_RECURSE
  "CMakeFiles/fig7_pbs_migration.dir/fig7_pbs_migration.cpp.o"
  "CMakeFiles/fig7_pbs_migration.dir/fig7_pbs_migration.cpp.o.d"
  "fig7_pbs_migration"
  "fig7_pbs_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_pbs_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
