file(REMOVE_RECURSE
  "libwow_bench_util.a"
)
