# Empty compiler generated dependencies file for wow_bench_util.
# This may be replaced when dependencies are built.
