file(REMOVE_RECURSE
  "CMakeFiles/wow_bench_util.dir/join_lab.cpp.o"
  "CMakeFiles/wow_bench_util.dir/join_lab.cpp.o.d"
  "libwow_bench_util.a"
  "libwow_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
