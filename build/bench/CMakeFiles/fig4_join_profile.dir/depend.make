# Empty dependencies file for fig4_join_profile.
# This may be replaced when dependencies are built.
