
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_join_profile.cpp" "bench/CMakeFiles/fig4_join_profile.dir/fig4_join_profile.cpp.o" "gcc" "bench/CMakeFiles/fig4_join_profile.dir/fig4_join_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wow_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wow/CMakeFiles/wow_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/wow_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/wow_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/vtcp/CMakeFiles/wow_vtcp.dir/DependInfo.cmake"
  "/root/repo/build/src/ipop/CMakeFiles/wow_ipop.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/wow_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wow_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
