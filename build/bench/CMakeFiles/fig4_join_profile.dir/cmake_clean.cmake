file(REMOVE_RECURSE
  "CMakeFiles/fig4_join_profile.dir/fig4_join_profile.cpp.o"
  "CMakeFiles/fig4_join_profile.dir/fig4_join_profile.cpp.o.d"
  "fig4_join_profile"
  "fig4_join_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_join_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
