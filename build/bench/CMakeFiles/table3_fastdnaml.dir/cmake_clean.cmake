file(REMOVE_RECURSE
  "CMakeFiles/table3_fastdnaml.dir/table3_fastdnaml.cpp.o"
  "CMakeFiles/table3_fastdnaml.dir/table3_fastdnaml.cpp.o.d"
  "table3_fastdnaml"
  "table3_fastdnaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fastdnaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
