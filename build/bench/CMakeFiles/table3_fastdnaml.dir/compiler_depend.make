# Empty compiler generated dependencies file for table3_fastdnaml.
# This may be replaced when dependencies are built.
