# Empty dependencies file for fig8_meme.
# This may be replaced when dependencies are built.
