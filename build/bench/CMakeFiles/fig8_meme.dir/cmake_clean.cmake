file(REMOVE_RECURSE
  "CMakeFiles/fig8_meme.dir/fig8_meme.cpp.o"
  "CMakeFiles/fig8_meme.dir/fig8_meme.cpp.o.d"
  "fig8_meme"
  "fig8_meme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_meme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
