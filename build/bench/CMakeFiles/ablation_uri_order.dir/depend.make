# Empty dependencies file for ablation_uri_order.
# This may be replaced when dependencies are built.
