file(REMOVE_RECURSE
  "CMakeFiles/ablation_uri_order.dir/ablation_uri_order.cpp.o"
  "CMakeFiles/ablation_uri_order.dir/ablation_uri_order.cpp.o.d"
  "ablation_uri_order"
  "ablation_uri_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uri_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
