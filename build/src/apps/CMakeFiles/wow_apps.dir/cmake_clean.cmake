file(REMOVE_RECURSE
  "CMakeFiles/wow_apps.dir/bulk_transfer.cpp.o"
  "CMakeFiles/wow_apps.dir/bulk_transfer.cpp.o.d"
  "libwow_apps.a"
  "libwow_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
