# Empty compiler generated dependencies file for wow_apps.
# This may be replaced when dependencies are built.
