file(REMOVE_RECURSE
  "libwow_apps.a"
)
