file(REMOVE_RECURSE
  "libwow_ipop.a"
)
