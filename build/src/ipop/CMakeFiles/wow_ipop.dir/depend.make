# Empty dependencies file for wow_ipop.
# This may be replaced when dependencies are built.
