
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipop/icmp_service.cpp" "src/ipop/CMakeFiles/wow_ipop.dir/icmp_service.cpp.o" "gcc" "src/ipop/CMakeFiles/wow_ipop.dir/icmp_service.cpp.o.d"
  "/root/repo/src/ipop/ip_packet.cpp" "src/ipop/CMakeFiles/wow_ipop.dir/ip_packet.cpp.o" "gcc" "src/ipop/CMakeFiles/wow_ipop.dir/ip_packet.cpp.o.d"
  "/root/repo/src/ipop/ipop_node.cpp" "src/ipop/CMakeFiles/wow_ipop.dir/ipop_node.cpp.o" "gcc" "src/ipop/CMakeFiles/wow_ipop.dir/ipop_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p2p/CMakeFiles/wow_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/wow_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
