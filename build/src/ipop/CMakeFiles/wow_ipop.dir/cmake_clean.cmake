file(REMOVE_RECURSE
  "CMakeFiles/wow_ipop.dir/icmp_service.cpp.o"
  "CMakeFiles/wow_ipop.dir/icmp_service.cpp.o.d"
  "CMakeFiles/wow_ipop.dir/ip_packet.cpp.o"
  "CMakeFiles/wow_ipop.dir/ip_packet.cpp.o.d"
  "CMakeFiles/wow_ipop.dir/ipop_node.cpp.o"
  "CMakeFiles/wow_ipop.dir/ipop_node.cpp.o.d"
  "libwow_ipop.a"
  "libwow_ipop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_ipop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
