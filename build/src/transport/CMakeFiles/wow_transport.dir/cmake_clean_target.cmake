file(REMOVE_RECURSE
  "libwow_transport.a"
)
