# Empty dependencies file for wow_transport.
# This may be replaced when dependencies are built.
