file(REMOVE_RECURSE
  "CMakeFiles/wow_transport.dir/transport.cpp.o"
  "CMakeFiles/wow_transport.dir/transport.cpp.o.d"
  "CMakeFiles/wow_transport.dir/uri.cpp.o"
  "CMakeFiles/wow_transport.dir/uri.cpp.o.d"
  "libwow_transport.a"
  "libwow_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
