file(REMOVE_RECURSE
  "libwow_sim.a"
)
