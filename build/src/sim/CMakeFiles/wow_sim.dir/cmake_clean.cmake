file(REMOVE_RECURSE
  "CMakeFiles/wow_sim.dir/simulator.cpp.o"
  "CMakeFiles/wow_sim.dir/simulator.cpp.o.d"
  "libwow_sim.a"
  "libwow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
