# Empty compiler generated dependencies file for wow_sim.
# This may be replaced when dependencies are built.
