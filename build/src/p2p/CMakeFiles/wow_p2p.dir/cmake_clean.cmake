file(REMOVE_RECURSE
  "CMakeFiles/wow_p2p.dir/connection_table.cpp.o"
  "CMakeFiles/wow_p2p.dir/connection_table.cpp.o.d"
  "CMakeFiles/wow_p2p.dir/linking.cpp.o"
  "CMakeFiles/wow_p2p.dir/linking.cpp.o.d"
  "CMakeFiles/wow_p2p.dir/node.cpp.o"
  "CMakeFiles/wow_p2p.dir/node.cpp.o.d"
  "CMakeFiles/wow_p2p.dir/packet.cpp.o"
  "CMakeFiles/wow_p2p.dir/packet.cpp.o.d"
  "CMakeFiles/wow_p2p.dir/shortcut_overlord.cpp.o"
  "CMakeFiles/wow_p2p.dir/shortcut_overlord.cpp.o.d"
  "libwow_p2p.a"
  "libwow_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
