
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/connection_table.cpp" "src/p2p/CMakeFiles/wow_p2p.dir/connection_table.cpp.o" "gcc" "src/p2p/CMakeFiles/wow_p2p.dir/connection_table.cpp.o.d"
  "/root/repo/src/p2p/linking.cpp" "src/p2p/CMakeFiles/wow_p2p.dir/linking.cpp.o" "gcc" "src/p2p/CMakeFiles/wow_p2p.dir/linking.cpp.o.d"
  "/root/repo/src/p2p/node.cpp" "src/p2p/CMakeFiles/wow_p2p.dir/node.cpp.o" "gcc" "src/p2p/CMakeFiles/wow_p2p.dir/node.cpp.o.d"
  "/root/repo/src/p2p/packet.cpp" "src/p2p/CMakeFiles/wow_p2p.dir/packet.cpp.o" "gcc" "src/p2p/CMakeFiles/wow_p2p.dir/packet.cpp.o.d"
  "/root/repo/src/p2p/shortcut_overlord.cpp" "src/p2p/CMakeFiles/wow_p2p.dir/shortcut_overlord.cpp.o" "gcc" "src/p2p/CMakeFiles/wow_p2p.dir/shortcut_overlord.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/wow_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
