file(REMOVE_RECURSE
  "libwow_p2p.a"
)
