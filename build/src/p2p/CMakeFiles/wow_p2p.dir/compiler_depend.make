# Empty compiler generated dependencies file for wow_p2p.
# This may be replaced when dependencies are built.
