file(REMOVE_RECURSE
  "CMakeFiles/wow_common.dir/ring_id.cpp.o"
  "CMakeFiles/wow_common.dir/ring_id.cpp.o.d"
  "CMakeFiles/wow_common.dir/stats.cpp.o"
  "CMakeFiles/wow_common.dir/stats.cpp.o.d"
  "libwow_common.a"
  "libwow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
