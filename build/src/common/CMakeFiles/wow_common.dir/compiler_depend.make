# Empty compiler generated dependencies file for wow_common.
# This may be replaced when dependencies are built.
