file(REMOVE_RECURSE
  "libwow_common.a"
)
