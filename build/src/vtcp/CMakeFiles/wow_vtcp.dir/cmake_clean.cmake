file(REMOVE_RECURSE
  "CMakeFiles/wow_vtcp.dir/segment.cpp.o"
  "CMakeFiles/wow_vtcp.dir/segment.cpp.o.d"
  "CMakeFiles/wow_vtcp.dir/tcp.cpp.o"
  "CMakeFiles/wow_vtcp.dir/tcp.cpp.o.d"
  "libwow_vtcp.a"
  "libwow_vtcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_vtcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
