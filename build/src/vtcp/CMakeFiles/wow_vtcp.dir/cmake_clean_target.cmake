file(REMOVE_RECURSE
  "libwow_vtcp.a"
)
