# Empty dependencies file for wow_vtcp.
# This may be replaced when dependencies are built.
