file(REMOVE_RECURSE
  "CMakeFiles/wow_middleware.dir/nfs.cpp.o"
  "CMakeFiles/wow_middleware.dir/nfs.cpp.o.d"
  "CMakeFiles/wow_middleware.dir/pbs.cpp.o"
  "CMakeFiles/wow_middleware.dir/pbs.cpp.o.d"
  "CMakeFiles/wow_middleware.dir/pvm.cpp.o"
  "CMakeFiles/wow_middleware.dir/pvm.cpp.o.d"
  "libwow_middleware.a"
  "libwow_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
