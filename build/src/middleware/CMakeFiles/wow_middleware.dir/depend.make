# Empty dependencies file for wow_middleware.
# This may be replaced when dependencies are built.
