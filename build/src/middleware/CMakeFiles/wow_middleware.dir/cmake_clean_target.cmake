file(REMOVE_RECURSE
  "libwow_middleware.a"
)
