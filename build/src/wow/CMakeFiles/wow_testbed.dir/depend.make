# Empty dependencies file for wow_testbed.
# This may be replaced when dependencies are built.
