file(REMOVE_RECURSE
  "libwow_testbed.a"
)
