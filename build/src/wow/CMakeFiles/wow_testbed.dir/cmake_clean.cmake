file(REMOVE_RECURSE
  "CMakeFiles/wow_testbed.dir/testbed.cpp.o"
  "CMakeFiles/wow_testbed.dir/testbed.cpp.o.d"
  "libwow_testbed.a"
  "libwow_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
