file(REMOVE_RECURSE
  "CMakeFiles/wow_net.dir/addr.cpp.o"
  "CMakeFiles/wow_net.dir/addr.cpp.o.d"
  "CMakeFiles/wow_net.dir/nat.cpp.o"
  "CMakeFiles/wow_net.dir/nat.cpp.o.d"
  "CMakeFiles/wow_net.dir/network.cpp.o"
  "CMakeFiles/wow_net.dir/network.cpp.o.d"
  "libwow_net.a"
  "libwow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
