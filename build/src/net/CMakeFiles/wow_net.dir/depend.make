# Empty dependencies file for wow_net.
# This may be replaced when dependencies are built.
