file(REMOVE_RECURSE
  "libwow_net.a"
)
